"""Pluggable trial executors.

The engine hands an executor a picklable function and a list of items;
the executor yields ``(index, result)`` pairs in whatever order the
trials finish.  The engine re-keys results, so completion order never
affects aggregates — which is what lets the serial and multiprocessing
executors produce bit-identical campaign results.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Protocol, Sequence, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


class CampaignExecutor(Protocol):
    """Anything that can map a function over trial specs."""

    def run(
        self, fn: Callable[[T], Any], items: Sequence[T]
    ) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, fn(items[index]))`` in completion order."""
        ...


class SerialExecutor:
    """In-process execution, in submission order."""

    def run(
        self, fn: Callable[[T], Any], items: Sequence[T]
    ) -> Iterator[tuple[int, Any]]:
        for index, item in enumerate(items):
            yield index, fn(item)


def _apply_indexed(payload: tuple[Callable, int, Any]) -> tuple[int, Any]:
    fn, index, item = payload
    return index, fn(item)


@dataclass
class MultiprocessingExecutor:
    """``multiprocessing.Pool``-backed execution.

    Parameters
    ----------
    workers:
        Pool size; defaults to the CPU count.  Capped at the number of
        items so tiny campaigns don't fork idle processes.
    chunksize:
        Trials handed to a worker per dispatch.  Larger chunks amortise
        IPC for cheap trials; 1 balances best for heavy ones.
    start_method:
        Forwarded to ``multiprocessing.get_context`` (None = platform
        default).
    """

    workers: int | None = None
    chunksize: int = 1
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {self.chunksize}")

    def run(
        self, fn: Callable[[T], Any], items: Sequence[T]
    ) -> Iterator[tuple[int, Any]]:
        items = list(items)
        if not items:
            return
        workers = self.workers or os.cpu_count() or 1
        workers = min(workers, len(items))
        if workers == 1:
            yield from SerialExecutor().run(fn, items)
            return
        context = multiprocessing.get_context(self.start_method)
        payloads = [(fn, index, item) for index, item in enumerate(items)]
        with context.Pool(processes=workers) as pool:
            yield from pool.imap_unordered(
                _apply_indexed, payloads, chunksize=self.chunksize
            )


def make_executor(workers: int | None, chunksize: int = 1) -> CampaignExecutor:
    """CLI helper: 0/1/None workers → serial, otherwise a pool."""
    if workers is None or workers <= 1:
        return SerialExecutor()
    return MultiprocessingExecutor(workers=workers, chunksize=chunksize)
