"""Observer protocol for campaign progress and metrics.

The engine emits structured events in domain language; implementations
may print progress, record for tests, or export metrics.  The engine
only ever calls the four methods below, always in the order
``campaign_started`` → ``trial_completed``* → ``cell_completed``* →
``campaign_completed``.
"""

from __future__ import annotations

import sys
import time
from typing import TYPE_CHECKING, Any, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.campaign.engine import CampaignResult, CellAggregate
    from repro.campaign.spec import CampaignSpec, ScenarioCell
    from repro.campaign.trial import TrialResult, TrialSpec


class CampaignObserver(Protocol):
    """Structured events emitted while a campaign runs."""

    def campaign_started(
        self, spec: "CampaignSpec", n_trials: int, n_cached: int
    ) -> None: ...

    def trial_completed(
        self, trial: "TrialSpec", result: "TrialResult", from_cache: bool
    ) -> None: ...

    def cell_completed(
        self, cell: "ScenarioCell", aggregate: "CellAggregate"
    ) -> None: ...

    def campaign_completed(self, result: "CampaignResult") -> None: ...


class NullObserver:
    """Ignores every event (the engine default)."""

    def campaign_started(self, spec, n_trials, n_cached) -> None:
        pass

    def trial_completed(self, trial, result, from_cache) -> None:
        pass

    def cell_completed(self, cell, aggregate) -> None:
        pass

    def campaign_completed(self, result) -> None:
        pass


class ConsoleObserver:
    """Human-readable progress lines on stderr."""

    def __init__(self, stream=None, every: int = 10) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._every = max(1, every)
        self._done = 0
        self._total = 0
        self._started = 0.0

    def _emit(self, message: str) -> None:
        print(message, file=self._stream, flush=True)

    def campaign_started(self, spec, n_trials, n_cached) -> None:
        self._total = n_trials
        self._done = 0
        self._started = time.perf_counter()
        self._emit(
            f"[campaign {spec.name}] {spec.n_cells} cells x "
            f"{spec.n_seeds} seeds = {n_trials} trials "
            f"({n_cached} cached)"
        )

    def trial_completed(self, trial, result, from_cache) -> None:
        self._done += 1
        if self._done % self._every == 0 or self._done == self._total:
            elapsed = time.perf_counter() - self._started
            self._emit(
                f"[campaign] {self._done}/{self._total} trials "
                f"({elapsed:.1f}s)"
            )

    def cell_completed(self, cell, aggregate) -> None:
        self._emit(
            f"[campaign] cell done: {cell.label()} "
            f"(p_success={aggregate.success_probability:.2f})"
        )

    def campaign_completed(self, result) -> None:
        self._emit(
            f"[campaign {result.spec.name}] finished in "
            f"{result.duration_s:.1f}s — {result.cache_hits} cached, "
            f"{result.cache_misses} executed"
        )


class RecordingObserver:
    """Records ``(event_name, payload)`` tuples — for tests and audits."""

    def __init__(self) -> None:
        self.events: list[tuple[str, dict[str, Any]]] = []

    @property
    def event_names(self) -> list[str]:
        return [name for name, _ in self.events]

    def campaign_started(self, spec, n_trials, n_cached) -> None:
        self.events.append(
            (
                "campaign_started",
                {"spec": spec, "n_trials": n_trials, "n_cached": n_cached},
            )
        )

    def trial_completed(self, trial, result, from_cache) -> None:
        self.events.append(
            (
                "trial_completed",
                {"trial": trial, "result": result, "from_cache": from_cache},
            )
        )

    def cell_completed(self, cell, aggregate) -> None:
        self.events.append(("cell_completed", {"cell": cell, "aggregate": aggregate}))

    def campaign_completed(self, result) -> None:
        self.events.append(("campaign_completed", {"result": result}))


class InterruptingObserver:
    """Raises ``KeyboardInterrupt`` after N *executed* trials complete.

    The deterministic stand-in for a SIGINT arriving mid-run: the
    engine journals each trial before notifying observers, so the
    interrupt fires at exactly the same recovery point a real signal
    between trials N and N+1 would leave behind.  Cached and replayed
    completions don't count — only freshly executed ones.  Used by the
    ``repro campaign --interrupt-after`` test hook and the CI
    interrupt/resume smoke job.
    """

    def __init__(self, after: int) -> None:
        from repro.errors import ConfigurationError

        if after < 1:
            raise ConfigurationError(f"interrupt-after must be >= 1, got {after}")
        self.after = after
        self.executed = 0

    def campaign_started(self, spec, n_trials, n_cached) -> None:
        pass

    def trial_completed(self, trial, result, from_cache) -> None:
        if from_cache:
            return
        self.executed += 1
        if self.executed >= self.after:
            raise KeyboardInterrupt(f"interrupted after {self.executed} trials")

    def cell_completed(self, cell, aggregate) -> None:
        pass

    def campaign_completed(self, result) -> None:
        pass


class CompositeObserver:
    """Fans every event out to several observers, in order."""

    def __init__(self, observers: Sequence[CampaignObserver]) -> None:
        self._observers = list(observers)

    def campaign_started(self, spec, n_trials, n_cached) -> None:
        for observer in self._observers:
            observer.campaign_started(spec, n_trials, n_cached)

    def trial_completed(self, trial, result, from_cache) -> None:
        for observer in self._observers:
            observer.trial_completed(trial, result, from_cache)

    def cell_completed(self, cell, aggregate) -> None:
        for observer in self._observers:
            observer.cell_completed(cell, aggregate)

    def campaign_completed(self, result) -> None:
        for observer in self._observers:
            observer.campaign_completed(result)
