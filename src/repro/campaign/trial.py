"""Trial specification and execution.

A :class:`TrialSpec` is the unit of work the executors move between
processes: one scenario cell plus one seed index.  It is a small,
picklable value object; :func:`run_trial` is a module-level function so
``multiprocessing`` can ship it to workers.

Every trial derives two independent RNG streams (array loading and
loss simulation) from one ``SeedSequence`` via ``spawn`` — see
:mod:`repro.campaign.spec` for the seeding contract.

:func:`run_trial_batch` is the cross-trial counterpart: it executes a
group of same-cell trials through one :func:`repro.baselines.base.
schedule_batch` call, so algorithms with a native batched engine (QRM)
amortise their dispatch overhead across the group.  Per-trial metrics
are computed by the same helper the serial path uses, from results that
are bit-identical to serial scheduling — only the wall-clock ``cpu_us``
convention changes (amortised: batch time / N).
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.campaign.spec import (
    TRIAL_SCHEMA_VERSION,
    ScenarioCell,
    stable_entropy,
    stable_hash,
)


@dataclass(frozen=True)
class TrialSpec:
    """One (cell, seed) execution of a campaign."""

    cell: ScenarioCell
    seed_index: int
    master_seed: int

    def seed_sequence(self) -> np.random.SeedSequence:
        """The trial's root ``SeedSequence``.

        Equivalent to ``cell_sequence(...).spawn(n)[seed_index]``: a
        ``SeedSequence`` constructed with ``spawn_key=(i,)`` is exactly
        the ``i``-th child ``spawn`` would return, without having to
        materialise the earlier siblings.
        """
        entropy = [self.master_seed, stable_entropy(self.cell.instance_key())]
        return np.random.SeedSequence(entropy, spawn_key=(self.seed_index,))

    def key(self) -> str:
        """Cache key: depends on the full cell, the seed and the schema."""
        return stable_hash(
            {
                "cell": self.cell.to_dict(),
                "seed_index": self.seed_index,
                "master_seed": self.master_seed,
                "version": TRIAL_SCHEMA_VERSION,
            }
        )


def cell_sequence(cell: ScenarioCell, master_seed: int) -> np.random.SeedSequence:
    """The per-cell parent sequence whose ``spawn`` children seed trials."""
    return np.random.SeedSequence([master_seed, stable_entropy(cell.instance_key())])


@dataclass(frozen=True)
class TrialResult:
    """Flat metric mapping produced by one trial (JSON-serialisable)."""

    key: str
    metrics: Mapping[str, float]

    def to_dict(self) -> dict:
        return {"key": self.key, "metrics": dict(self.metrics)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrialResult":
        return cls(key=data["key"], metrics=dict(data["metrics"]))


@dataclass(frozen=True)
class TrialFailure:
    """A trial raised instead of producing metrics.

    Crossing the executor boundary as a value (rather than an
    exception) lets the engine journal the failure against the right
    trial before aborting the campaign — a raw exception out of
    ``imap_unordered`` has already lost the trial index.
    """

    key: str
    error: str


def run_trial_guarded(trial: TrialSpec) -> "TrialResult | TrialFailure":
    """:func:`run_trial`, with exceptions captured as :class:`TrialFailure`."""
    try:
        return run_trial(trial)
    except Exception as exc:
        return TrialFailure(key=trial.key(), error=f"{type(exc).__name__}: {exc}")


#: Optional override for how trials obtain their scheduler.  When set
#: (via :func:`use_scheduler_factory`), every trial in the calling
#: process resolves its algorithm through the factory instead of
#: constructing one locally — which is how the service executor turns a
#: whole campaign into a client of the scheduling server without the
#: trial code knowing.  A factory returning ``None`` falls through to
#: local resolution.
_scheduler_factory: Callable[[ScenarioCell, object], object] | None = None


@contextlib.contextmanager
def use_scheduler_factory(factory: Callable[[ScenarioCell, object], object]):
    """Route :func:`_resolve_algorithm` through ``factory`` in this scope.

    The hook is process-global (trials may run on worker threads), so
    scopes must not be nested with different factories.
    """
    global _scheduler_factory
    previous = _scheduler_factory
    _scheduler_factory = factory
    try:
        yield
    finally:
        _scheduler_factory = previous


def cell_geometry(cell: ScenarioCell):
    """The cell's array geometry: a centred rectangle or a masked target."""
    from repro.lattice.geometry import ArrayGeometry

    if cell.mask is not None:
        return ArrayGeometry.with_mask(
            cell.size, cell.size, cell.mask.build(cell.size)
        )
    return ArrayGeometry.square(cell.size, cell.target)


def _load_array(cell: ScenarioCell, geometry, load_seed) -> "object":
    """Load the cell's initial array through its named loading model."""
    from repro.lattice.loading import load_named

    return load_named(
        cell.loading, geometry, cell.fill, rng=np.random.default_rng(load_seed)
    )


def _resolve_algorithm(cell: ScenarioCell, geometry):
    """The cell's scheduler: an explicit QRM preset or a registry name."""
    from repro.baselines.base import get_algorithm

    if _scheduler_factory is not None:
        algorithm = _scheduler_factory(cell, geometry)
        if algorithm is not None:
            return algorithm
    if cell.qrm is not None:
        from repro.core.qrm import QrmScheduler

        return QrmScheduler(geometry, cell.qrm.to_params())
    return get_algorithm(cell.algorithm, geometry)


def run_trial(trial: TrialSpec) -> TrialResult:
    """Execute one trial and return its metrics.

    Deterministic given the trial spec, except for the wall-clock
    metrics added when ``cell.timing`` is set.  Cells with
    ``cycles > 1`` run the closed-loop pipeline (image -> detect ->
    schedule -> replay, repeated) instead of one open-loop schedule.
    """
    cell = trial.cell
    geometry = cell_geometry(cell)
    if cell.cycles > 1:
        return _closed_loop_trial(trial, _resolve_algorithm(cell, geometry))
    load_seed, loss_seed = trial.seed_sequence().spawn(2)
    array = _load_array(cell, geometry, load_seed)

    algorithm = _resolve_algorithm(cell, geometry)
    start = time.perf_counter()
    result = algorithm.schedule(array)
    elapsed_us = (time.perf_counter() - start) * 1e6
    if cell.timing:
        # Best-of-3 to suppress scheduler noise; the analysis itself is
        # deterministic, so the repeats discard nothing but jitter.
        for _ in range(2):
            start = time.perf_counter()
            algorithm.schedule(array)
            elapsed_us = min(elapsed_us, (time.perf_counter() - start) * 1e6)

    return _trial_metrics(trial, array, result, loss_seed, elapsed_us)


def _closed_loop_trial(trial: TrialSpec, algorithm) -> TrialResult:
    """Multi-cycle trial: the pipeline's closed loop, one shot per trial.

    Seed derivation mirrors the single-cycle path's first split — the
    trial sequence spawns (load, loop) and the loop sequence spawns the
    flat per-cycle ``[camera, loss, ...]`` streams
    (:func:`repro.pipeline.stages.spawn_shot_streams` shape).  Count
    metrics are summed over cycles; state metrics (``target_fill``,
    ``defect_free``, ``survival``) describe the final truth array.
    ``motion_ms`` is the summed AWG program duration (the closed loop
    compiles waveforms, so that is the natural per-cycle motion time).
    """
    from repro.pipeline.stages import PipelineConfig, run_shot
    from repro.timing.latency import STAGE_SCHEDULE, StageReport

    cell = trial.cell
    config = PipelineConfig(
        size=cell.size,
        target=cell.target,
        fill=cell.fill,
        algorithm=cell.algorithm,
        cycles=cell.cycles,
        loss=cell.loss.to_model() if cell.loss is not None else None,
        fpga_timing=cell.fpga,
        mask=cell.mask.build(cell.size) if cell.mask is not None else None,
    )
    load_seed, loop_seed = trial.seed_sequence().spawn(2)
    array = _load_array(cell, config.geometry(), load_seed)
    n_initial = array.n_atoms
    report = StageReport() if cell.timing else None
    shot = run_shot(
        0, array, loop_seed.spawn(2 * cell.cycles), config, algorithm, report
    )

    records = shot.records
    last = records[-1]
    metrics: dict[str, float] = {
        "moves": float(shot.total_moves),
        "iterations": float(sum(record.iterations for record in records)),
        "target_fill": float(last.target_fill_after),
        "defect_free": float(last.defect_free_after),
        "analysis_ops": float(sum(record.analysis_ops for record in records)),
        "skipped_stale": float(
            sum(record.skipped_stale for record in records)
        ),
        "cycles_used": float(shot.cycles_used),
    }
    if cell.timing and report is not None:
        timing = report.stages.get(STAGE_SCHEDULE)
        metrics["cpu_us"] = timing.total_us if timing is not None else 0.0
    if cell.fpga:
        metrics["fpga_cycles"] = float(
            sum(record.fpga_cycles or 0 for record in records)
        )
        metrics["fpga_us"] = float(
            sum(record.fpga_us or 0.0 for record in records)
        )
    if cell.loss is not None:
        n_final = int(last.truth_after.sum())
        metrics["survival"] = n_final / n_initial if n_initial else 1.0
        metrics["fill_after_loss"] = float(last.target_fill_after)
        metrics["motion_ms"] = (
            sum(record.program_us for record in records) / 1000.0
        )
    return TrialResult(key=trial.key(), metrics=metrics)


def run_trial_batch_guarded(
    trials: Sequence[TrialSpec],
) -> "list[TrialResult | TrialFailure]":
    """:func:`run_trial_batch`, with exceptions captured as failures.

    A batch fails as a unit: one exception marks every trial of the
    group, and the engine aborts on the first failure it sees — same
    contract as :func:`run_trial_guarded`, lifted to groups.
    """
    try:
        return list(run_trial_batch(trials))
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
        return [TrialFailure(key=trial.key(), error=error) for trial in trials]


def run_trial_batch(trials: Sequence[TrialSpec]) -> list[TrialResult]:
    """Execute a group of same-cell trials through one batched call.

    Metrics are derived from :func:`repro.baselines.base.schedule_batch`
    results, which are bit-identical to per-trial ``schedule`` calls —
    so every deterministic metric matches :func:`run_trial` exactly.
    For timing cells ``cpu_us`` is the amortised per-trial cost (whole-
    batch wall time divided by the group size, best of 3 repeats).
    """
    from repro.baselines.base import schedule_batch

    if not trials:
        return []
    cell = trials[0].cell
    if any(trial.cell != cell for trial in trials[1:]):
        raise ValueError("run_trial_batch requires trials from one scenario cell")
    if cell.cycles > 1:
        # The closed loop interleaves scheduling with camera/loss state,
        # so there is no whole-batch schedule call to amortise — run the
        # group's trials through the per-trial path instead.
        return [run_trial(trial) for trial in trials]
    geometry = cell_geometry(cell)
    seeds = [trial.seed_sequence().spawn(2) for trial in trials]
    arrays = [
        _load_array(cell, geometry, load_seed) for load_seed, _ in seeds
    ]

    algorithm = _resolve_algorithm(cell, geometry)
    start = time.perf_counter()
    results = schedule_batch(algorithm, arrays)
    elapsed_us = (time.perf_counter() - start) * 1e6 / len(trials)
    if cell.timing:
        for _ in range(2):
            start = time.perf_counter()
            schedule_batch(algorithm, arrays)
            elapsed_us = min(
                elapsed_us, (time.perf_counter() - start) * 1e6 / len(trials)
            )

    return [
        _trial_metrics(trial, array, result, loss_seed, elapsed_us)
        for trial, array, result, (_, loss_seed) in zip(
            trials, arrays, results, seeds
        )
    ]


def _trial_metrics(
    trial: TrialSpec,
    array,
    result,
    loss_seed: np.random.SeedSequence,
    elapsed_us: float,
) -> TrialResult:
    """Flatten one scheduling result into the trial's metric mapping."""
    cell = trial.cell
    metrics: dict[str, float] = {
        "moves": float(result.n_moves),
        "iterations": float(result.iterations_used),
        "target_fill": float(result.target_fill_fraction),
        "defect_free": float(result.defect_free),
        "analysis_ops": float(result.analysis_ops),
        "skipped_stale": float(
            sum(stats.n_skipped_stale for stats in result.iterations)
        ),
    }
    if cell.timing:
        metrics["cpu_us"] = elapsed_us

    if cell.fpga:
        from repro.fpga.accelerator import QrmAccelerator

        if cell.qrm is not None:
            accelerator = QrmAccelerator(array.geometry, params=cell.qrm.to_params())
        else:
            accelerator = QrmAccelerator(array.geometry)
        run = accelerator.run(array)
        metrics["fpga_cycles"] = float(run.report.total_cycles)
        metrics["fpga_us"] = float(run.report.time_us)

    if cell.loss is not None:
        from repro.aod.timing import DEFAULT_MOVE_TIMING
        from repro.physics.loss import simulate_losses

        report = simulate_losses(
            array,
            result.schedule,
            loss=cell.loss.to_model(),
            rng=np.random.default_rng(loss_seed),
        )
        from repro.lattice.metrics import target_fill_fraction

        metrics["survival"] = float(report.survival_fraction)
        metrics["fill_after_loss"] = float(target_fill_fraction(report.final_array))
        metrics["motion_ms"] = (
            DEFAULT_MOVE_TIMING.schedule_motion_us(result.schedule) / 1000.0
        )

    return TrialResult(key=trial.key(), metrics=metrics)
