"""The campaign orchestrator.

:class:`ExperimentCampaign` expands a spec into trials, serves what it
can from a resumed run journal and the trial cache, dispatches the rest
to an executor, and aggregates per-cell statistics in a fixed
(cell, seed) order — so the same spec yields bit-identical aggregates
whether trials ran serially, across a process pool, asynchronously,
out of the cache, or replayed from an interrupted run's journal.

With ``batch_size > 1`` the engine groups consecutive same-cell pending
trials and dispatches each group through
:func:`~repro.campaign.trial.run_trial_batch_guarded`, handing
batch-capable algorithms (QRM's cross-trial engine) a whole stack per
call.  Cache keys, journal records and observer events stay strictly
per-trial, and grouping never reorders the seed stream — so batched
runs share cache entries with serial runs and produce byte-identical
aggregates.

The orchestration is deliberately free of infrastructure: executors,
cache, observer, and journal are injected behind small protocols and
default to in-process, no-cache, silent, unjournalled implementations,
so tests can substitute fakes without touching the loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.stats import FillStats, Summary
from repro.analysis.tables import format_table, to_csv
from repro.campaign.cache import TrialCache
from repro.campaign.executors import CampaignExecutor, SerialExecutor
from repro.campaign.journal import RunJournal
from repro.campaign.observer import CampaignObserver, NullObserver
from repro.campaign.spec import CampaignSpec, ScenarioCell
from repro.campaign.trial import (
    TrialFailure,
    TrialResult,
    TrialSpec,
    run_trial_batch_guarded,
    run_trial_guarded,
)
from repro.errors import ConfigurationError, ExecutionError

#: Metric column order for tables/CSV (only present metrics are shown).
METRIC_ORDER = (
    "target_fill",
    "moves",
    "iterations",
    "fpga_us",
    "fpga_cycles",
    "cpu_us",
    "survival",
    "fill_after_loss",
    "motion_ms",
    "analysis_ops",
    "skipped_stale",
    "cycles_used",
)


@dataclass(frozen=True)
class CellAggregate:
    """Per-cell summaries over all of the cell's seeded trials."""

    cell: ScenarioCell
    trials: int
    metrics: dict[str, Summary]

    def mean(self, name: str) -> float:
        try:
            return self.metrics[name].mean
        except KeyError:
            raise ConfigurationError(
                f"cell {self.cell.label()!r} has no metric '{name}'; "
                f"have {sorted(self.metrics)}"
            ) from None

    @property
    def success_probability(self) -> float:
        if "defect_free" not in self.metrics:  # zero-trial cell
            return float("nan")
        return self.mean("defect_free")


@dataclass
class CampaignResult:
    """Everything a campaign run produced."""

    spec: CampaignSpec
    aggregates: list[CellAggregate] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    journal_replays: int = 0
    duration_s: float = 0.0

    @property
    def n_trials(self) -> int:
        return sum(aggregate.trials for aggregate in self.aggregates)

    @property
    def cache_hit_fraction(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def aggregate_for(self, **cell_fields) -> CellAggregate:
        """The unique aggregate whose cell matches all given fields."""
        matches = [
            aggregate
            for aggregate in self.aggregates
            if all(
                getattr(aggregate.cell, name) == value
                for name, value in cell_fields.items()
            )
        ]
        if len(matches) != 1:
            raise ConfigurationError(
                f"{len(matches)} cells match {cell_fields!r} in campaign "
                f"'{self.spec.name}'"
            )
        return matches[0]

    def _metric_columns(self) -> list[str]:
        present: set[str] = set()
        for aggregate in self.aggregates:
            present.update(aggregate.metrics)
        ordered = [name for name in METRIC_ORDER if name in present]
        ordered.extend(sorted(present - set(ordered) - {"defect_free"}))
        return ordered

    def _headers_and_rows(self, stats: bool = False) -> tuple[list[str], list[list]]:
        """Aggregate table content.

        With ``stats=True`` every metric expands into mean/std/min/max
        columns (the full :class:`~repro.analysis.stats.Summary`);
        otherwise each metric is its mean, as the seed tables showed.
        """
        metric_names = self._metric_columns()
        headers = ["algorithm", "size", "fill", "trials", "p_success"]
        for name in metric_names:
            headers.append(name)
            if stats:
                headers += [f"{name}_std", f"{name}_min", f"{name}_max"]
        rows = []
        for aggregate in self.aggregates:
            cell = aggregate.cell
            row: list = [
                cell.algorithm,
                cell.size,
                cell.fill,
                aggregate.trials,
                aggregate.success_probability,
            ]
            for name in metric_names:
                summary = aggregate.metrics.get(name)
                if summary is None:
                    row += [""] * (4 if stats else 1)
                    continue
                row.append(summary.mean)
                if stats:
                    row += [summary.std, summary.minimum, summary.maximum]
            rows.append(row)
        return headers, rows

    def format_table(self, stats: bool = False) -> str:
        headers, rows = self._headers_and_rows(stats=stats)
        title = (
            f"Campaign '{self.spec.name}' "
            f"[{self.spec.spec_hash()}]: {self.n_trials} trials, "
            f"{self.cache_hits} cached"
        )
        return format_table(headers, rows, title=title)

    def to_csv(self, stats: bool = False) -> str:
        headers, rows = self._headers_and_rows(stats=stats)
        return to_csv(headers, rows)

    def write_csv(self, path: str | Path, stats: bool = False) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_csv(stats=stats) + "\n")
        return path

    def fill_stats(self) -> list[FillStats]:
        """Bridge to the legacy per-cell quality container."""
        return [
            FillStats(
                algorithm=aggregate.cell.algorithm,
                size=aggregate.cell.size,
                fill=aggregate.cell.fill,
                mean_target_fill=aggregate.mean("target_fill"),
                success_probability=aggregate.success_probability,
                mean_moves=aggregate.mean("moves"),
                trials=aggregate.trials,
            )
            for aggregate in self.aggregates
        ]


def batch_trials(
    pending: Sequence[TrialSpec], batch_size: int
) -> list[list[TrialSpec]]:
    """Group consecutive same-cell trials into batches of ``batch_size``.

    Grouping never reorders: trials stay in grid (cell, seed) order, so
    per-trial results — and therefore aggregates — are unchanged by the
    batch boundary.  A cell change always starts a new batch, because
    :func:`~repro.campaign.trial.run_trial_batch` schedules one cell's
    geometry/algorithm per call.
    """
    batches: list[list[TrialSpec]] = []
    for trial in pending:
        if (
            batches
            and len(batches[-1]) < batch_size
            and batches[-1][-1].cell == trial.cell
        ):
            batches[-1].append(trial)
        else:
            batches.append([trial])
    return batches


def aggregate_cell(cell: ScenarioCell, results: Sequence[TrialResult]) -> CellAggregate:
    """Summarise one cell's trial results (in seed order)."""
    names = sorted(results[0].metrics) if results else []
    metrics = {
        name: Summary.of([result.metrics[name] for result in results]) for name in names
    }
    return CellAggregate(cell=cell, trials=len(results), metrics=metrics)


class ExperimentCampaign:
    """Spec → grid → seeded trials → chunked execution → aggregation."""

    def __init__(
        self,
        spec: CampaignSpec,
        executor: CampaignExecutor | None = None,
        cache: TrialCache | None = None,
        observer: CampaignObserver | None = None,
        journal: RunJournal | None = None,
        batch_size: int = 1,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.spec = spec
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.observer = observer if observer is not None else NullObserver()
        self.journal = journal
        self.batch_size = batch_size

    def trials(self) -> list[TrialSpec]:
        """Every (cell, seed) trial, in deterministic grid order."""
        return [
            TrialSpec(
                cell=cell,
                seed_index=seed_index,
                master_seed=self.spec.master_seed,
            )
            for cell in self.spec.expand()
            for seed_index in range(self.spec.n_seeds)
        ]

    def run(self) -> CampaignResult:
        started = time.perf_counter()
        cells = self.spec.expand()
        trials = self.trials()
        keys = [trial.key() for trial in trials]

        # Timing cells bypass both the cache and the journal replay:
        # their wall-clock metrics are measurements of *this* run and
        # must never be served stale.
        results: dict[str, TrialResult] = {}
        n_replayed = 0
        if self.journal is not None:
            replay = self.journal.replay
            if (
                replay.spec_hash is not None
                and replay.spec_hash != self.spec.spec_hash()
            ):
                raise ConfigurationError(
                    f"journal {self.journal.path} records spec "
                    f"{replay.spec_hash}, not {self.spec.spec_hash()} — "
                    f"refusing to resume a different campaign"
                )
            for trial, key in zip(trials, keys):
                if trial.cell.timing:
                    continue
                replayed = replay.results.get(key)
                if replayed is not None:
                    results[key] = replayed
                    n_replayed += 1
        if self.cache is not None:
            for trial, key in zip(trials, keys):
                if trial.cell.timing or key in results:
                    continue
                cached = self.cache.get(trial)
                if cached is not None:
                    results[key] = cached
        n_cached = len(results) - n_replayed

        if self.journal is not None:
            self.journal.record_started(
                self.spec,
                n_trials=len(trials),
                n_cached=n_cached,
                n_replayed=n_replayed,
            )
        self.observer.campaign_started(
            self.spec, n_trials=len(trials), n_cached=n_cached + n_replayed
        )
        for trial, key in zip(trials, keys):
            if key in results:
                if self.journal is not None and key not in self.journal.replay.results:
                    self.journal.record_trial_finished(
                        trial, results[key], from_cache=True
                    )
                self.observer.trial_completed(trial, results[key], from_cache=True)

        pending = [trial for trial, key in zip(trials, keys) if key not in results]
        if self.journal is not None:
            # One started event per trial across all run segments: a
            # resumed journal doesn't re-announce what it already holds.
            already = self.journal.replay.started_keys
            for trial in pending:
                if trial.key() not in already:
                    self.journal.record_trial_started(trial)
        def consume(trial: TrialSpec, outcome) -> None:
            if isinstance(outcome, TrialFailure):
                if self.journal is not None:
                    self.journal.record_trial_error(trial, outcome.error)
                raise ExecutionError(
                    f"trial {trial.cell.label()!r} (seed {trial.seed_index}) "
                    f"failed: {outcome.error}"
                )
            results[trial.key()] = outcome
            if self.cache is not None and not trial.cell.timing:
                self.cache.put(trial, outcome)
            if self.journal is not None:
                self.journal.record_trial_finished(trial, outcome, from_cache=False)
            self.observer.trial_completed(trial, outcome, from_cache=False)

        if self.batch_size == 1:
            for index, outcome in self.executor.run(run_trial_guarded, pending):
                consume(pending[index], outcome)
        else:
            batches = batch_trials(pending, self.batch_size)
            for index, outcomes in self.executor.run(
                run_trial_batch_guarded, batches
            ):
                for trial, outcome in zip(batches[index], outcomes):
                    consume(trial, outcome)

        aggregates: list[CellAggregate] = []
        n_seeds = self.spec.n_seeds
        for cell_index, cell in enumerate(cells):
            cell_keys = keys[cell_index * n_seeds : (cell_index + 1) * n_seeds]
            cell_results = [results[key] for key in cell_keys]
            aggregate = aggregate_cell(cell, cell_results)
            if self.journal is not None:
                self.journal.record_checkpoint(cell, aggregate)
            self.observer.cell_completed(cell, aggregate)
            aggregates.append(aggregate)

        result = CampaignResult(
            spec=self.spec,
            aggregates=aggregates,
            cache_hits=n_cached,
            cache_misses=len(pending),
            journal_replays=n_replayed,
            duration_s=time.perf_counter() - started,
        )
        if self.journal is not None:
            self.journal.record_completed(result)
        self.observer.campaign_completed(result)
        return result


def run_campaign(
    spec: CampaignSpec,
    executor: CampaignExecutor | None = None,
    cache: TrialCache | None = None,
    observer: CampaignObserver | None = None,
    journal: RunJournal | None = None,
    batch_size: int = 1,
) -> CampaignResult:
    """One-shot convenience wrapper around :class:`ExperimentCampaign`."""
    return ExperimentCampaign(
        spec,
        executor=executor,
        cache=cache,
        observer=observer,
        journal=journal,
        batch_size=batch_size,
    ).run()
