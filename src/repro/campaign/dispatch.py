"""Multi-host trial dispatch behind the executor protocol (skeleton).

:class:`DistributedExecutor` fans trials out over a set of
:class:`WorkerSpec` endpoints through a pluggable
:class:`WorkerTransport`.  The transport shipped here,
:class:`SubprocessWorkerTransport`, launches local
``python -m repro.campaign.worker`` subprocesses and speaks the
length-prefixed pickle frame protocol of :mod:`repro.campaign.worker` —
the same protocol a TCP or ``multiprocessing.managers`` transport would
speak to reach a remote host, which is the intended extension point:
implement :class:`WorkerTransport` for your fabric and pass it as
``transport_factory``.

The executor contract matches :mod:`repro.campaign.executors`: results
are yielded as ``(index, result)`` in completion order, and the engine
re-keys them, so distribution never changes campaign aggregates.
"""

from __future__ import annotations

import os
import queue
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Protocol, Sequence, TypeVar

from repro.campaign.protocol import (
    function_path,
    read_frame,
    write_frame,
    write_handshake,
)
from repro.errors import ConfigurationError, ExecutionError

T = TypeVar("T")


@dataclass(frozen=True)
class WorkerSpec:
    """One worker endpoint of a distributed campaign.

    ``slots`` is how many independent worker processes the endpoint
    contributes.  ``python`` and ``env`` parameterise how the worker
    interpreter is launched; both only apply to transports that launch
    processes themselves (the subprocess transport).  Non-local hosts
    are carried for future TCP/SSH transports — the subprocess
    transport rejects them.
    """

    host: str = "localhost"
    slots: int = 1
    python: str | None = None
    env: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ConfigurationError(f"slots must be >= 1, got {self.slots}")

    @property
    def local(self) -> bool:
        return self.host in ("localhost", "127.0.0.1", "::1")


class WorkerTransport(Protocol):
    """One bidirectional channel to one worker process.

    Lifecycle: ``start(fn_path)`` once, then interleaved
    ``submit``/``next_result`` calls, then ``close()``.  Implementations
    must tolerate ``close()`` at any point (used for cancellation).
    """

    def start(self, fn_path: str) -> None: ...

    def submit(self, index: int, item: Any) -> None: ...

    def next_result(self) -> tuple[str, int, Any]: ...

    def close(self) -> None: ...


class SubprocessWorkerTransport:
    """Local subprocess transport: one ``repro.campaign.worker`` child."""

    def __init__(self, spec: WorkerSpec) -> None:
        if not spec.local:
            raise ConfigurationError(
                f"the subprocess transport only serves localhost, got "
                f"host {spec.host!r}; plug a TCP transport in via "
                f"transport_factory for remote workers"
            )
        self.spec = spec
        self._process: subprocess.Popen | None = None

    def start(self, fn_path: str) -> None:
        import repro

        env = dict(os.environ)
        env.update(self.spec.env)
        # Guarantee the child resolves the same `repro` package as the
        # parent, however the parent found it (installed or src tree).
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        path = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not path else os.pathsep.join([package_root, path])
        )
        self._process = subprocess.Popen(
            [self.spec.python or sys.executable, "-m", "repro.campaign.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        write_handshake(self._process.stdin, {"fn": fn_path})

    def submit(self, index: int, item: Any) -> None:
        assert self._process is not None, "transport not started"
        write_frame(self._process.stdin, (index, item))

    def next_result(self) -> tuple[str, int, Any]:
        assert self._process is not None, "transport not started"
        frame = read_frame(self._process.stdout)
        if frame is None:
            raise ExecutionError(
                f"worker exited unexpectedly (rc={self._process.poll()})"
            )
        return frame

    def close(self) -> None:
        process, self._process = self._process, None
        if process is None:
            return
        try:
            process.stdin.close()
            process.stdout.close()
        except OSError:
            pass
        try:
            process.wait(timeout=5)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


@dataclass
class DistributedExecutor:
    """Fan trials out across worker endpoints (one in flight per slot).

    The work function must be a module-level callable (it crosses the
    transport as an import path) and the items must be picklable — the
    same constraints the multiprocessing executor already imposes, and
    which :func:`repro.campaign.trial.run_trial` satisfies.
    """

    workers: Sequence[WorkerSpec] = (WorkerSpec(),)
    transport_factory: Callable[[WorkerSpec], WorkerTransport] = (
        SubprocessWorkerTransport
    )

    def run(
        self, fn: Callable[[T], Any], items: Sequence[T]
    ) -> Iterator[tuple[int, Any]]:
        items = list(items)
        if not items:
            return
        fn_path = function_path(fn)
        specs = [spec for spec in self.workers for _ in range(spec.slots)]
        if not specs:
            raise ConfigurationError("distributed dispatch needs >= 1 worker slot")
        transports = [self.transport_factory(spec) for spec in specs[: len(items)]]

        work: queue.SimpleQueue = queue.SimpleQueue()
        for indexed in enumerate(items):
            work.put(indexed)
        for _ in transports:
            work.put(None)  # one stop token per pump
        results: queue.SimpleQueue = queue.SimpleQueue()
        stop = threading.Event()

        def pump(transport: WorkerTransport) -> None:
            try:
                transport.start(fn_path)
                while not stop.is_set():
                    unit = work.get()
                    if unit is None:
                        return
                    transport.submit(*unit)
                    results.put(transport.next_result())
            except Exception as exc:  # surfaced on the consumer thread
                results.put(("transport-error", -1, f"{type(exc).__name__}: {exc}"))

        threads = [
            threading.Thread(target=pump, args=(transport,), daemon=True)
            for transport in transports
        ]
        try:
            for thread in threads:
                thread.start()
            for _ in items:
                status, index, payload = results.get()
                if status == "ok":
                    yield index, payload
                elif status == "error":
                    raise ExecutionError(f"trial {index} failed remotely: {payload}")
                else:
                    raise ExecutionError(f"worker transport failed: {payload}")
        finally:
            stop.set()
            for transport in transports:
                transport.close()
            for thread in threads:
                thread.join(timeout=5)
