"""Multi-host trial dispatch behind the executor protocol.

:class:`DistributedExecutor` fans trials out over a set of
:class:`WorkerSpec` endpoints through a pluggable
:class:`WorkerTransport`.  Two transports ship in-tree:

* :class:`SubprocessWorkerTransport` — local ``python -m
  repro.campaign.worker`` children over stdin/stdout pipes;
* :class:`TcpWorkerTransport` — ``repro worker --listen`` daemons
  (local or remote) over a TCP connection, speaking the same
  magic/version handshake and length-prefixed pickle frames
  (:mod:`repro.campaign.protocol`).

The executor is a fault-tolerant fabric, not a naive scatter:

* every transport gets a dedicated pump thread plus a receiver thread,
  so a blocked read never wedges dispatch or shutdown;
* while a unit is in flight the pump sends ``("ping", token)`` liveness
  probes every ``ping_interval`` seconds; a worker that produces
  neither results nor pongs for ``ping_timeout`` seconds is declared
  dead.  The worker answers pings from its reader thread even while
  computing, so only a dead or unreachable worker goes silent;
* a dead worker's in-flight unit — and everything still queued — is
  re-dispatched to the surviving workers; the run fails only when no
  workers remain or one unit has killed ``max_attempts`` workers;
* units in flight longer than ``straggler_factor`` × the median
  completed-unit time are speculatively re-dispatched to an idle
  worker, and whichever copy finishes first wins;
* results are yielded at most once per index (a dedup set), so
  re-dispatch and speculation never duplicate a trial.  The engine
  re-keys results by index, which is what keeps campaign aggregates
  byte-identical to serial execution no matter how units were retried.

On a fatal failure (a remote error frame, every worker dead, a unit out
of attempts) the run stops the pumps and drains the work queue before
closing transports, so surviving workers are not fed doomed units.

The executor contract matches :mod:`repro.campaign.executors`: results
are yielded as ``(index, result)`` in completion order.
"""

from __future__ import annotations

import os
import queue
import socket
import statistics
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Protocol, Sequence, TypeVar

from repro.campaign.protocol import (
    function_path,
    parse_hostport,
    read_frame,
    write_frame,
    write_handshake,
)
from repro.errors import ConfigurationError, ExecutionError

T = TypeVar("T")


@dataclass(frozen=True)
class WorkerSpec:
    """One worker endpoint of a distributed campaign.

    With ``port`` set the endpoint is a running ``repro worker
    --listen`` daemon and the default transport dials it over TCP;
    without one it is a local subprocess the transport launches itself.
    ``slots`` is how many independent work channels the endpoint
    contributes (the TCP daemon serves connections sequentially, so
    slots > 1 on a TCP endpoint needs one daemon per slot; subprocess
    endpoints launch one child per slot).  ``python`` and ``env``
    parameterise how the worker interpreter is launched; both only
    apply to transports that launch processes themselves.
    """

    host: str = "localhost"
    slots: int = 1
    python: str | None = None
    env: Mapping[str, str] = field(default_factory=dict)
    port: int | None = None

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ConfigurationError(f"slots must be >= 1, got {self.slots}")
        if self.port is not None and not 0 < self.port <= 65535:
            raise ConfigurationError(f"port must be in 1..65535, got {self.port}")

    @property
    def local(self) -> bool:
        return self.host in ("localhost", "127.0.0.1", "::1")

    @classmethod
    def parse(cls, text: str, slots: int = 1) -> "WorkerSpec":
        """``"host:port"`` → a TCP endpoint spec."""
        host, port = parse_hostport(text)
        return cls(host=host, port=port, slots=slots)


def parse_workers(value: str | int | None) -> tuple[WorkerSpec, ...]:
    """CLI ``--workers`` for the distributed executor.

    ``"host:port[,host:port...]"`` dials running TCP worker daemons; a
    plain integer spins up that many local subprocess workers; ``None``
    means one local subprocess.
    """
    if value is None:
        return (WorkerSpec(),)
    if isinstance(value, int):
        return (WorkerSpec(slots=value),)
    text = value.strip()
    if not text:
        raise ConfigurationError(
            "the distributed executor needs --workers N or "
            "--workers host:port[,host:port...]"
        )
    try:
        return (WorkerSpec(slots=int(text)),)
    except ValueError:
        pass
    return tuple(
        WorkerSpec.parse(entry.strip()) for entry in text.split(",") if entry.strip()
    )


class WorkerTransport(Protocol):
    """One bidirectional channel to one worker process.

    Lifecycle: ``start(fn_path)`` once, then interleaved
    ``submit``/``ping``/``next_result`` calls, then ``close()``.
    Implementations must tolerate ``close()`` at any point and from any
    thread (used for cancellation — a close must wake a blocked
    ``next_result``), and repeated closes.
    """

    def start(self, fn_path: str) -> None: ...

    def submit(self, index: int, item: Any) -> None: ...

    def ping(self, token: int) -> None: ...

    def next_result(self) -> tuple[str, int, Any]: ...

    def close(self) -> None: ...


class SubprocessWorkerTransport:
    """Local subprocess transport: one ``repro.campaign.worker`` child."""

    def __init__(self, spec: WorkerSpec) -> None:
        if not spec.local:
            raise ConfigurationError(
                f"the subprocess transport only serves localhost, got "
                f"host {spec.host!r}; give the worker a port "
                f"(host:port) to dial it over TCP"
            )
        self.spec = spec
        self._process: subprocess.Popen | None = None

    def start(self, fn_path: str) -> None:
        import repro

        env = dict(os.environ)
        env.update(self.spec.env)
        # Guarantee the child resolves the same `repro` package as the
        # parent, however the parent found it (installed or src tree).
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        path = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not path else os.pathsep.join([package_root, path])
        )
        self._process = subprocess.Popen(
            [self.spec.python or sys.executable, "-m", "repro.campaign.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        write_handshake(self._process.stdin, {"fn": fn_path})

    def submit(self, index: int, item: Any) -> None:
        assert self._process is not None, "transport not started"
        write_frame(self._process.stdin, (index, item))

    def ping(self, token: int) -> None:
        assert self._process is not None, "transport not started"
        write_frame(self._process.stdin, ("ping", token))

    def next_result(self) -> tuple[str, int, Any]:
        assert self._process is not None, "transport not started"
        frame = read_frame(self._process.stdout)
        if frame is None:
            raise ExecutionError(
                f"worker exited unexpectedly (rc={self._process.poll()})"
            )
        return frame

    def close(self) -> None:
        process, self._process = self._process, None
        if process is None:
            return
        # Close each pipe independently: an OSError closing stdin must
        # not leak the stdout pipe (or vice versa).
        for stream in (process.stdin, process.stdout):
            try:
                stream.close()
            except OSError:
                pass
        try:
            process.wait(timeout=5)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


class TcpWorkerTransport:
    """TCP transport: one connection to a ``repro worker --listen`` daemon."""

    def __init__(self, spec: WorkerSpec, connect_timeout: float = 10.0) -> None:
        if spec.port is None:
            raise ConfigurationError(
                f"the TCP transport needs a port on {spec.host!r}; "
                f"write the worker as host:port"
            )
        self.spec = spec
        self.connect_timeout = connect_timeout
        self._sock: socket.socket | None = None
        self._rfile: Any = None
        self._wfile: Any = None

    def start(self, fn_path: str) -> None:
        try:
            sock = socket.create_connection(
                (self.spec.host, self.spec.port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise ExecutionError(
                f"cannot reach worker {self.spec.host}:{self.spec.port}: {exc}"
            ) from exc
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        write_handshake(self._wfile, {"fn": fn_path})

    def submit(self, index: int, item: Any) -> None:
        assert self._wfile is not None, "transport not started"
        write_frame(self._wfile, (index, item))

    def ping(self, token: int) -> None:
        assert self._wfile is not None, "transport not started"
        write_frame(self._wfile, ("ping", token))

    def next_result(self) -> tuple[str, int, Any]:
        assert self._rfile is not None, "transport not started"
        frame = read_frame(self._rfile)
        if frame is None:
            raise ExecutionError(
                f"worker {self.spec.host}:{self.spec.port} closed the connection"
            )
        return frame

    def close(self) -> None:
        sock, self._sock = self._sock, None
        rfile, self._rfile = self._rfile, None
        wfile, self._wfile = self._wfile, None
        if sock is not None:
            # shutdown (not just close) wakes a receiver thread blocked
            # in recv(), so cancellation cannot hang on a silent peer.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        for stream in (rfile, wfile, sock):
            if stream is None:
                continue
            try:
                stream.close()
            except (OSError, ValueError):
                pass


def default_transport(spec: WorkerSpec) -> WorkerTransport:
    """TCP for ``host:port`` endpoints, a local subprocess otherwise."""
    if spec.port is not None:
        return TcpWorkerTransport(spec)
    return SubprocessWorkerTransport(spec)


class _WorkerDied(Exception):
    """Internal: this pump's worker is unusable (reason in ``str``)."""


@dataclass
class _InFlight:
    index: int
    started: float


@dataclass
class DistributedExecutor:
    """Fault-tolerant fan-out across worker endpoints (one pump per slot).

    Parameters
    ----------
    workers:
        Endpoint specs; each spec's ``slots`` expand into independent
        channels built by ``transport_factory``.
    transport_factory:
        Builds the channel for one spec (default: TCP when the spec has
        a port, local subprocess otherwise).
    ping_interval:
        Seconds between liveness probes while a unit is in flight.
    ping_timeout:
        Silence (no result, no pong) after which a worker is declared
        dead and its in-flight unit re-dispatched.
    straggler_factor:
        Speculatively re-dispatch a unit once it has been in flight
        longer than this multiple of the median completed-unit time
        (``None`` disables speculation).
    min_straggler_s:
        Floor on the straggler threshold, so cheap campaigns don't
        speculate on scheduling jitter.
    max_attempts:
        Dispatch attempts per unit before the run fails (guards against
        a unit that reliably kills every worker it lands on).
    """

    workers: Sequence[WorkerSpec] = (WorkerSpec(),)
    transport_factory: Callable[[WorkerSpec], WorkerTransport] = default_transport
    ping_interval: float = 0.5
    ping_timeout: float = 30.0
    straggler_factor: float | None = 4.0
    min_straggler_s: float = 2.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.ping_interval <= 0:
            raise ConfigurationError(
                f"ping_interval must be > 0, got {self.ping_interval}"
            )
        if self.ping_timeout <= 0:
            raise ConfigurationError(
                f"ping_timeout must be > 0, got {self.ping_timeout}"
            )
        if self.straggler_factor is not None and self.straggler_factor <= 1:
            raise ConfigurationError(
                f"straggler_factor must be > 1, got {self.straggler_factor}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def run(
        self, fn: Callable[[T], Any], items: Sequence[T]
    ) -> Iterator[tuple[int, Any]]:
        items = list(items)
        if not items:
            return
        fn_path = function_path(fn)
        specs = [spec for spec in self.workers for _ in range(spec.slots)]
        if not specs:
            raise ConfigurationError("distributed dispatch needs >= 1 worker slot")
        yield from _DispatchRun(self, fn_path, items, specs[: len(items)]).drive()


class _DispatchRun:
    """Shared state of one :meth:`DistributedExecutor.run` invocation."""

    def __init__(
        self,
        executor: DistributedExecutor,
        fn_path: str,
        items: Sequence[Any],
        specs: Sequence[WorkerSpec],
    ) -> None:
        self.executor = executor
        self.fn_path = fn_path
        self.items = items
        self.specs = specs
        self.work: queue.SimpleQueue = queue.SimpleQueue()
        self.events: queue.SimpleQueue = queue.SimpleQueue()
        self.stop = threading.Event()
        self.lock = threading.Lock()
        # Guarded by `lock` (shared between pumps and the consumer):
        self.completed: set[int] = set()
        self.in_flight: dict[int, _InFlight] = {}
        self.respawned: set[int] = set()
        # Consumer-thread-only:
        self.attempts: dict[int, int] = {}
        self.unit_times: list[float] = []
        self.transports: list[WorkerTransport] = []
        self.threads: list[threading.Thread] = []

    # -- pump side (one thread per transport) ------------------------------

    def _pump(self, pump_id: int, transport: WorkerTransport) -> None:
        try:
            transport.start(self.fn_path)
        except Exception as exc:
            transport.close()
            self.events.put(
                ("worker-dead", pump_id, None, f"worker start failed: {exc}")
            )
            return
        inbox: queue.SimpleQueue = queue.SimpleQueue()

        def receive() -> None:
            while True:
                try:
                    frame = transport.next_result()
                except Exception as exc:
                    inbox.put(("recv-error", exc))
                    return
                inbox.put(("frame", frame))

        threading.Thread(
            target=receive, name=f"dispatch-recv-{pump_id}", daemon=True
        ).start()
        while True:
            unit = self.work.get()
            if unit is None or self.stop.is_set():
                return
            with self.lock:
                if unit in self.completed:
                    continue  # stale re-dispatch; the first copy already won
                self.in_flight[pump_id] = _InFlight(unit, time.monotonic())
            try:
                outcome = self._run_unit(transport, inbox, unit)
            except _WorkerDied as died:
                if not self.stop.is_set():
                    self.events.put(("worker-dead", pump_id, unit, str(died)))
                transport.close()
                return
            finally:
                with self.lock:
                    self.in_flight.pop(pump_id, None)
            self.events.put(outcome)

    def _run_unit(
        self, transport: WorkerTransport, inbox: queue.SimpleQueue, index: int
    ) -> tuple[str, int, Any, float]:
        started = time.monotonic()
        try:
            transport.submit(index, self.items[index])
        except Exception as exc:
            raise _WorkerDied(f"submit failed: {exc}") from exc
        deadline = started + self.executor.ping_timeout
        token = 0
        while True:
            try:
                kind, payload = inbox.get(timeout=self.executor.ping_interval)
            except queue.Empty:
                if time.monotonic() >= deadline:
                    raise _WorkerDied(
                        f"no result or pong for "
                        f"{self.executor.ping_timeout:g}s (unit {index})"
                    ) from None
                token += 1
                try:
                    transport.ping(token)
                except Exception as exc:
                    raise _WorkerDied(f"ping failed: {exc}") from exc
                continue
            if kind == "recv-error":
                raise _WorkerDied(f"receive failed: {payload}") from None
            frame = payload
            if isinstance(frame, tuple) and frame and frame[0] == "pong":
                deadline = time.monotonic() + self.executor.ping_timeout
                continue
            try:
                status, got_index, result = frame
            except (TypeError, ValueError):
                raise _WorkerDied(f"protocol violation: {frame!r}") from None
            if status not in ("ok", "error") or got_index != index:
                raise _WorkerDied(f"protocol violation: {frame!r}") from None
            return (status, got_index, result, time.monotonic() - started)

    # -- consumer side -----------------------------------------------------

    def _redispatch(self, index: int, reason: str) -> None:
        attempts = self.attempts.get(index, 0)
        if attempts >= self.executor.max_attempts:
            raise ExecutionError(
                f"unit {index} failed on {attempts} workers "
                f"(last failure: {reason}) — giving up"
            )
        self.attempts[index] = attempts + 1
        self.work.put(index)

    def _respawn_stragglers(self) -> None:
        factor = self.executor.straggler_factor
        if factor is None or not self.unit_times:
            return
        threshold = max(
            self.executor.min_straggler_s,
            factor * statistics.median(self.unit_times),
        )
        now = time.monotonic()
        with self.lock:
            laggards = [
                flight.index
                for flight in self.in_flight.values()
                if now - flight.started > threshold
                and flight.index not in self.completed
                and flight.index not in self.respawned
            ]
            self.respawned.update(laggards)
        for index in laggards:
            # Speculative copy: the attempt bump is bookkeeping only —
            # speculation never fails a unit, only dead workers do.
            self.attempts[index] = self.attempts.get(index, 0) + 1
            self.work.put(index)

    def drive(self) -> Iterator[tuple[int, Any]]:
        for index in range(len(self.items)):
            self.attempts[index] = 1
            self.work.put(index)
        self.transports = [
            self.executor.transport_factory(spec) for spec in self.specs
        ]
        self.threads = [
            threading.Thread(
                target=self._pump,
                args=(pump_id, transport),
                name=f"dispatch-pump-{pump_id}",
                daemon=True,
            )
            for pump_id, transport in enumerate(self.transports)
        ]
        live = len(self.threads)
        yielded: set[int] = set()
        poll = min(0.25, self.executor.ping_interval)
        try:
            for thread in self.threads:
                thread.start()
            while len(yielded) < len(self.items):
                try:
                    event = self.events.get(timeout=poll)
                except queue.Empty:
                    self._respawn_stragglers()
                    continue
                if event[0] == "worker-dead":
                    _, pump_id, orphan, reason = event
                    live -= 1
                    with self.lock:
                        lost = orphan is not None and orphan not in self.completed
                    if lost:
                        self._redispatch(orphan, reason)
                    if live == 0:
                        raise ExecutionError(
                            f"all distributed workers died; "
                            f"last failure: {reason}"
                        )
                    continue
                status, index, payload, elapsed = event
                with self.lock:
                    stale = index in self.completed
                    if status == "ok" and not stale:
                        self.completed.add(index)
                if stale:
                    continue  # a speculative duplicate finished second
                if status == "error":
                    raise ExecutionError(
                        f"trial {index} failed remotely: {payload}"
                    )
                self.unit_times.append(elapsed)
                yielded.add(index)
                yield index, payload
        finally:
            # Completion or failure: stop the pumps, drain the queue so
            # no surviving worker is fed doomed units, then release the
            # pumps and close every channel (closes wake blocked reads).
            self.stop.set()
            while True:
                try:
                    self.work.get_nowait()
                except queue.Empty:
                    break
            for _ in self.threads:
                self.work.put(None)
            for transport in self.transports:
                transport.close()
            for thread in self.threads:
                thread.join(timeout=5)
