"""Command-line interface.

Examples::

    repro rearrange --size 20 --seed 7 --render
    repro rearrange --size 50 --algorithm tetris
    repro figure 7a --trials 3
    repro figure all
    repro resources --size 90
    repro trace --size 10
    repro algorithms
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import (
    run_ablation,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_headline,
    run_loss_comparison,
    run_success_sweep,
    run_workflow_comparison,
)
from repro.analysis.feasibility import (
    minimum_fill_for_target,
    predict_compaction_fill,
)
from repro.aod.validator import validate_schedule
from repro.baselines.base import get_algorithm, list_algorithms
from repro.fpga.accelerator import QrmAccelerator
from repro.fpga.bitvec import BitVector
from repro.fpga.resources import ResourceModel
from repro.fpga.shift_kernel import PipelinedShiftKernel
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform
from repro.lattice.metrics import summarize
from repro.lattice.render import render_side_by_side


def _cmd_rearrange(args: argparse.Namespace) -> int:
    geometry = ArrayGeometry.square(args.size, args.target)
    array = load_uniform(geometry, args.fill, rng=args.seed)
    algorithm = get_algorithm(args.algorithm, geometry)
    result = algorithm.schedule(array)
    report = validate_schedule(array, result.schedule)

    print(result.summary())
    print(report.format())
    if args.fpga and args.algorithm == "qrm":
        run = QrmAccelerator(geometry).run(array)
        print(run.report.summary())
    if args.render:
        print()
        print(render_side_by_side(array, result.final))
    print()
    print(summarize(result.final).format())
    return 0 if report.ok else 1


def _cmd_figure(args: argparse.Namespace) -> int:
    which = args.which
    trials = args.trials
    outputs = []
    if which in ("7a", "all"):
        outputs.append(run_fig7a(trials=trials).format_table())
    if which in ("7b", "all"):
        outputs.append(run_fig7b(trials=trials).format_table())
    if which in ("8", "all"):
        outputs.append(run_fig8().format_table())
    if which in ("headline", "all"):
        outputs.append(run_headline().format_table())
    if which in ("ablation", "all"):
        outputs.append(run_ablation(trials=trials).format_table())
    if which in ("success", "all"):
        outputs.append(run_success_sweep(trials=trials).format_table())
    if which in ("workflow", "all"):
        outputs.append(run_workflow_comparison().format_table())
    if which in ("loss", "all"):
        outputs.append(run_loss_comparison(trials=trials).format_table())
    if not outputs:
        print(f"unknown figure '{which}'", file=sys.stderr)
        return 2
    print("\n\n".join(outputs))
    return 0


def _cmd_resources(args: argparse.Namespace) -> int:
    report = ResourceModel().estimate(args.size)
    print(report.format_table())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    geometry = ArrayGeometry.square(args.size)
    array = load_uniform(geometry, args.fill, rng=args.seed)
    frame = geometry.quadrant_frames()[0]
    local = frame.extract(array.grid)
    rows = [BitVector.from_array(local[u]) for u in range(local.shape[0])]
    kernel = PipelinedShiftKernel(qw=geometry.half_width)
    kernel.process(rows)
    for cycle in (3, geometry.half_width + 1):
        print(kernel.render_snapshot(cycle))
        print()
    return 0


def _cmd_algorithms(_: argparse.Namespace) -> int:
    for name in list_algorithms():
        print(name)
    return 0


def _cmd_feasibility(args: argparse.Namespace) -> int:
    geometry = ArrayGeometry.square(args.size, args.target)
    estimate = predict_compaction_fill(geometry, args.fill)
    print(estimate.format())
    threshold = minimum_fill_for_target(geometry)
    print(
        f"loading probability needed for >=99.9% fill without repair: "
        f"{threshold:.3f}"
    )
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    geometry = ArrayGeometry.square(args.size)
    array = load_uniform(geometry, 0.5, rng=args.seed)
    accelerator = QrmAccelerator(geometry)
    trace = accelerator.trace_iteration(array, iteration=args.iteration)
    print(trace.render_timeline())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweeps import qrm_quality_sweep

    result = qrm_quality_sweep(
        sizes=args.sizes, fills=args.fills, trials=args.trials
    )
    print(result.format_table(title="QRM assembly quality sweep"))
    if args.csv:
        path = result.write_csv(args.csv)
        print(f"[written to {path}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of the DATE 2025 FPGA neutral-atom rearrangement "
            "accelerator (QRM)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("rearrange", help="run one rearrangement")
    p.add_argument("--size", type=int, default=20)
    p.add_argument("--target", type=int, default=None)
    p.add_argument("--fill", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--algorithm", default="qrm", choices=list_algorithms())
    p.add_argument("--render", action="store_true")
    p.add_argument("--fpga", action="store_true",
                   help="also run the FPGA cycle model (qrm only)")
    p.set_defaults(func=_cmd_rearrange)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument(
        "which",
        choices=["7a", "7b", "8", "headline", "ablation", "success",
                 "workflow", "loss", "all"],
    )
    p.add_argument("--trials", type=int, default=3)
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser(
        "feasibility",
        help="analytic compaction-fill prediction for a geometry",
    )
    p.add_argument("--size", type=int, default=50)
    p.add_argument("--target", type=int, default=None)
    p.add_argument("--fill", type=float, default=0.5)
    p.set_defaults(func=_cmd_feasibility)

    p = sub.add_parser(
        "timeline", help="FIFO-occupancy timeline of one iteration"
    )
    p.add_argument("--size", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--iteration", type=int, default=0)
    p.set_defaults(func=_cmd_timeline)

    p = sub.add_parser(
        "sweep", help="QRM assembly-quality sweep over size x fill"
    )
    p.add_argument("--sizes", type=int, nargs="+", default=[20, 30])
    p.add_argument("--fills", type=float, nargs="+", default=[0.5, 0.6])
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--csv", type=str, default=None,
                   help="also write the sweep to this CSV file")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("resources", help="FPGA resource estimate")
    p.add_argument("--size", type=int, default=50)
    p.set_defaults(func=_cmd_resources)

    p = sub.add_parser("trace", help="Fig 6-style shift-kernel trace")
    p.add_argument("--size", type=int, default=10)
    p.add_argument("--fill", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("algorithms", help="list registered algorithms")
    p.set_defaults(func=_cmd_algorithms)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
