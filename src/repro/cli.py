"""Command-line interface.

Examples::

    repro rearrange --size 20 --seed 7 --render
    repro rearrange --size 50 --algorithm tetris
    repro figure 7a --trials 3
    repro figure all
    repro campaign --sizes 20 30 --fills 0.5 0.6 --algorithms qrm tetris \\
        --seeds 25 --workers 4 --csv campaign.csv
    repro campaign --spec my_campaign.json --workers 8
    repro campaign --seeds 100 --workers 4 --executor async \\
        --journal run.jsonl
    repro campaign --resume run.jsonl
    repro campaign --sizes 12 --seeds 10 --loss --cycles 3
    repro pipeline --size 12 --shots 4 --cycles 3 --loss --fpga
    repro worker --listen 0.0.0.0:7501
    repro campaign --executor distributed \\
        --workers host-a:7501,host-b:7501 --journal run.jsonl
    repro resources --size 90
    repro trace --size 10
    repro algorithms
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import (
    run_ablation,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_headline,
    run_loss_comparison,
    run_success_sweep,
    run_workflow_comparison,
)
from repro.analysis.feasibility import (
    minimum_fill_for_target,
    predict_compaction_fill,
)
from repro.aod.validator import validate_schedule
from repro.baselines.base import get_algorithm, list_algorithms
from repro.errors import ReproError
from repro.fpga.accelerator import QrmAccelerator
from repro.fpga.bitvec import BitVector
from repro.fpga.resources import ResourceModel
from repro.fpga.shift_kernel import PipelinedShiftKernel
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform
from repro.lattice.metrics import summarize
from repro.lattice.render import render_side_by_side


def _parse_mask(text: str, size: int):
    """A CLI mask spec string -> concrete ``TargetMask`` for ``size``."""
    from repro.campaign.spec import MaskSpec

    return MaskSpec.parse(text).build(size)


def _cmd_rearrange(args: argparse.Namespace) -> int:
    if args.mask is not None:
        geometry = ArrayGeometry.with_mask(
            args.size, args.size, _parse_mask(args.mask, args.size)
        )
    else:
        geometry = ArrayGeometry.square(args.size, args.target)
    array = load_uniform(geometry, args.fill, rng=args.seed)
    algorithm = get_algorithm(args.algorithm, geometry)
    result = algorithm.schedule(array)
    report = validate_schedule(array, result.schedule)

    print(result.summary())
    print(report.format())
    if args.fpga and args.algorithm == "qrm":
        run = QrmAccelerator(geometry).run(array)
        print(run.report.summary())
    if args.render:
        print()
        print(render_side_by_side(array, result.final))
    print()
    print(summarize(result.final).format())
    return 0 if report.ok else 1


def _cmd_figure(args: argparse.Namespace) -> int:
    which = args.which
    trials = args.trials
    outputs = []
    if which in ("7a", "all"):
        outputs.append(run_fig7a(trials=trials).format_table())
    if which in ("7b", "all"):
        outputs.append(run_fig7b(trials=trials).format_table())
    if which in ("8", "all"):
        outputs.append(run_fig8().format_table())
    if which in ("headline", "all"):
        outputs.append(run_headline().format_table())
    if which in ("ablation", "all"):
        outputs.append(run_ablation(trials=trials).format_table())
    if which in ("success", "all"):
        outputs.append(run_success_sweep(trials=trials).format_table())
    if which in ("workflow", "all"):
        outputs.append(run_workflow_comparison().format_table())
    if which in ("loss", "all"):
        outputs.append(run_loss_comparison(trials=trials).format_table())
    if not outputs:
        print(f"unknown figure '{which}'", file=sys.stderr)
        return 2
    print("\n\n".join(outputs))
    return 0


def _cmd_resources(args: argparse.Namespace) -> int:
    report = ResourceModel().estimate(args.size)
    print(report.format_table())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    geometry = ArrayGeometry.square(args.size)
    array = load_uniform(geometry, args.fill, rng=args.seed)
    frame = geometry.quadrant_frames()[0]
    local = frame.extract(array.grid)
    rows = [BitVector.from_array(local[u]) for u in range(local.shape[0])]
    kernel = PipelinedShiftKernel(qw=geometry.half_width)
    kernel.process(rows)
    for cycle in (3, geometry.half_width + 1):
        print(kernel.render_snapshot(cycle))
        print()
    return 0


def _cmd_algorithms(_: argparse.Namespace) -> int:
    for name in list_algorithms():
        print(name)
    return 0


def _cmd_feasibility(args: argparse.Namespace) -> int:
    geometry = ArrayGeometry.square(args.size, args.target)
    estimate = predict_compaction_fill(geometry, args.fill)
    print(estimate.format())
    threshold = minimum_fill_for_target(geometry)
    print(
        f"loading probability needed for >=99.9% fill without repair: "
        f"{threshold:.3f}"
    )
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    geometry = ArrayGeometry.square(args.size)
    array = load_uniform(geometry, 0.5, rng=args.seed)
    accelerator = QrmAccelerator(geometry)
    trace = accelerator.trace_iteration(array, iteration=args.iteration)
    print(trace.render_timeline())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweeps import qrm_quality_sweep
    from repro.campaign import make_executor

    result = qrm_quality_sweep(
        sizes=args.sizes,
        fills=args.fills,
        trials=args.trials,
        executor=make_executor(args.workers),
    )
    print(result.format_table(title="QRM assembly quality sweep"))
    if args.csv:
        path = result.write_csv(args.csv)
        print(f"[written to {path}]")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.perf import DEFAULT_FILLS, DEFAULT_SIZES, run_perf_suite
    from repro.baselines.base import resolve_algorithms

    if args.smoke:
        sizes = args.sizes or [16, 32]
        fills = args.fills or [0.5]
        algorithms = args.algorithms or ["qrm", "tetris", "mta1"]
        trials = args.trials or 2
        speedup_size = args.speedup_size or 32
    else:
        sizes = args.sizes or list(DEFAULT_SIZES)
        fills = args.fills or list(DEFAULT_FILLS)
        algorithms = args.algorithms
        trials = args.trials or 3
        speedup_size = args.speedup_size or 64

    try:
        algorithms = resolve_algorithms(algorithms)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    baseline = None
    if args.gate:
        gate_path = Path(args.gate)
        if not gate_path.is_file():
            print(f"gate baseline not found: {gate_path}", file=sys.stderr)
            return 2
        baseline = json.loads(gate_path.read_text())

    observer = None if args.quiet else (
        lambda label: print(f"[bench] {label}", file=sys.stderr)
    )
    report = run_perf_suite(
        sizes=sizes,
        fills=fills,
        algorithms=algorithms,
        trials=trials,
        master_seed=args.seed,
        speedup_size=None if args.no_speedup else speedup_size,
        observer=observer,
    )
    print(report.format_table())
    path = report.write_json(args.out)
    print(f"[written to {path}]")

    if baseline is not None:
        from repro.analysis.perf_gate import evaluate_gate

        outcome = evaluate_gate(
            report.to_dict(), baseline, tolerance=args.gate_tolerance
        )
        for notice in outcome.notices:
            print(f"[gate] skipped {notice}", file=sys.stderr)
        if not outcome.ok:
            print(outcome.message(), file=sys.stderr)
            return 1
        print(f"[gate] speedups within {args.gate_tolerance:.0%} of {args.gate}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import SchedulingService

    async def run() -> None:
        service = SchedulingService(
            host=args.host,
            port=args.port,
            batch_window=args.batch_window / 1000.0,
            max_batch_size=args.max_batch_size,
            cache_size=args.cache_size,
        )
        await service.start()
        if not args.quiet:
            host, port = service.address
            batching = (
                f"micro-batching up to {service.max_batch_size} requests "
                f"per {args.batch_window:g}ms window"
                if service.max_batch_size > 1
                else "batching off"
            )
            print(
                f"[serve] rearrangement service on {host}:{port} ({batching}; "
                f"pickle frames + JSON lines on the same port)",
                file=sys.stderr,
                flush=True,
            )
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()
            if not args.quiet:
                stats = service.snapshot_stats()
                print(f"[serve] stopped; stats: {stats}", file=sys.stderr)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        return 130
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.campaign.worker import run_worker

    return run_worker(
        listen=args.listen,
        max_connections=args.max_connections,
        quiet=args.quiet,
    )


def _cmd_pipeline(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.physics.loss import LossModel
    from repro.pipeline import PipelineConfig, run_pipeline

    config = PipelineConfig(
        size=args.size,
        target=args.target,
        fill=args.fill,
        algorithm=args.algorithm,
        shots=args.shots,
        cycles=args.cycles,
        master_seed=args.seed,
        loss=LossModel() if args.loss else None,
        fpga_timing=args.fpga,
        queue_depth=args.queue_depth,
        mask=(
            _parse_mask(args.mask, args.size)
            if args.mask is not None
            else None
        ),
    )
    modes = (
        ["sequential", "pipelined"] if args.mode == "both" else [args.mode]
    )
    results = {mode: run_pipeline(config, mode) for mode in modes}

    status = 0
    if args.mode == "both":
        digests = {mode: r.trace_digest() for mode, r in results.items()}
        if len(set(digests.values())) == 1:
            if not args.quiet:
                print(
                    f"[pipelined == sequential: trace digest "
                    f"{digests['sequential'][:16]}]"
                )
        else:
            print(f"MODE MISMATCH: {digests}", file=sys.stderr)
            status = 1
    if not args.quiet:
        for result in results.values():
            print(result.format_summary())
            print()
    if args.trace:
        # Canonical per-frame trace: byte-identical across modes, which
        # is exactly what the CI smoke job `cmp`s.
        lines = next(iter(results.values())).trace_lines()
        Path(args.trace).write_text("\n".join(lines) + "\n")
        if not args.quiet:
            print(f"[trace written to {args.trace}]")
    if args.json:
        payload = {mode: r.to_dict() for mode, r in results.items()}
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        if not args.quiet:
            print(f"[report written to {args.json}]")
    return status


def _cmd_campaign(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.campaign import (
        CampaignSpec,
        CompositeObserver,
        ConsoleObserver,
        ExperimentCampaign,
        InterruptingObserver,
        LossSpec,
        NullObserver,
        RunJournal,
        TrialCache,
        make_executor,
    )

    if args.resume and (args.spec or args.journal):
        print(
            "--resume reconstructs the spec and journal path from the "
            "journal file; drop --spec/--journal",
            file=sys.stderr,
        )
        return 2

    journal = None
    if args.resume:
        journal_path = Path(args.resume)
        if not journal_path.is_file():
            print(f"journal file not found: {journal_path}", file=sys.stderr)
            return 2
        journal = RunJournal.resume(journal_path)
        spec = journal.replay.spec
        if spec is None:
            print(
                f"journal {journal_path} has no campaign_started record "
                f"to resume from",
                file=sys.stderr,
            )
            return 2
    elif args.spec:
        spec_path = Path(args.spec)
        if not spec_path.is_file():
            print(f"spec file not found: {spec_path}", file=sys.stderr)
            return 2
        try:
            spec = CampaignSpec.from_json(spec_path.read_text())
        except (ValueError, TypeError, KeyError) as exc:
            print(f"invalid spec file {spec_path}: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.campaign.spec import MaskSpec

        masks: tuple = (None,)
        if args.mask:
            masks = tuple(
                None if text in ("none", "rect") else MaskSpec.parse(text)
                for text in args.mask
            )
        spec = CampaignSpec(
            name=args.name,
            algorithms=tuple(args.algorithms),
            sizes=tuple(args.sizes),
            fills=tuple(args.fills),
            n_seeds=args.seeds,
            master_seed=args.seed,
            fpga=args.fpga,
            timing=args.timing,
            cycles=args.cycles,
            loss_models=(LossSpec(),) if args.loss else (None,),
            masks=masks,
            loading=args.loading,
        )
    if args.dump_spec:
        print(spec.to_json())
        return 0

    from repro.baselines.base import resolve_algorithms
    from repro.campaign.trial import cell_geometry
    from repro.errors import UnsupportedGeometryError

    try:
        resolve_algorithms(spec.algorithms)
        # Fail fast when a masked cell names a rect-only algorithm,
        # before any trial executes (one check per distinct geometry).
        checked: set = set()
        for cell in spec.expand():
            if cell.mask is None:
                continue
            signature = (cell.algorithm, cell.size, cell.mask)
            if signature in checked:
                continue
            checked.add(signature)
            resolve_algorithms((cell.algorithm,), cell_geometry(cell))
    except (KeyError, UnsupportedGeometryError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    if journal is None and args.journal:
        journal = RunJournal.fresh(args.journal)

    observer = NullObserver() if args.quiet else ConsoleObserver()
    if args.interrupt_after is not None:
        observer = CompositeObserver(
            [observer, InterruptingObserver(args.interrupt_after)]
        )

    workers = args.workers
    if workers is not None and args.executor != "distributed":
        try:
            workers = int(workers)
        except ValueError:
            print(
                f"--workers {workers!r} names worker endpoints, which only "
                f"--executor distributed accepts; other executors take a "
                f"process count",
                file=sys.stderr,
            )
            return 2

    cache = None if args.no_cache else TrialCache(args.cache_dir)
    campaign = ExperimentCampaign(
        spec,
        executor=make_executor(
            workers,
            args.chunksize,
            kind=args.executor,
            service_addr=args.service_addr,
        ),
        cache=cache,
        observer=observer,
        journal=journal,
        batch_size=args.batch_size,
    )
    try:
        result = campaign.run()
    except KeyboardInterrupt:
        # Both interrupt paths exit with the conventional SIGINT code
        # 130; only the journalled one leaves anything to resume from.
        if journal is not None:
            print(
                f"[campaign interrupted — resume with: "
                f"repro campaign --resume {journal.path}]",
                file=sys.stderr,
            )
        else:
            print(
                "[campaign interrupted — no journal was recorded, so "
                "partial progress is discarded; re-run with --journal "
                "to make runs resumable]",
                file=sys.stderr,
            )
        return 130
    finally:
        if journal is not None:
            journal.close()
    print(result.format_table(stats=args.stats))
    replayed = (
        f", {result.journal_replays} replayed from journal"
        if journal is not None
        else ""
    )
    print(
        f"[{result.cache_hits}/{result.n_trials} trials from cache"
        f"{replayed}, {result.duration_s:.2f}s]"
    )
    if args.csv:
        path = result.write_csv(args.csv, stats=args.stats)
        print(f"[written to {path}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of the DATE 2025 FPGA neutral-atom rearrangement "
            "accelerator (QRM)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("rearrange", help="run one rearrangement")
    p.add_argument("--size", type=int, default=20)
    p.add_argument("--target", type=int, default=None)
    p.add_argument(
        "--mask",
        type=str,
        default=None,
        metavar="SPEC",
        help="non-rectangular target mask: kind[:key=value,...], e.g. "
        "'ring', 'ring:outer=6,inner=3', 'triangular:pitch=2', "
        "'sparse:sites=1-2+3-4' (overrides --target)",
    )
    p.add_argument("--fill", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--algorithm", default="qrm", choices=list_algorithms())
    p.add_argument("--render", action="store_true")
    p.add_argument(
        "--fpga", action="store_true", help="also run the FPGA cycle model (qrm only)"
    )
    p.set_defaults(func=_cmd_rearrange)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument(
        "which",
        choices=[
            "7a",
            "7b",
            "8",
            "headline",
            "ablation",
            "success",
            "workflow",
            "loss",
            "all",
        ],
    )
    p.add_argument("--trials", type=int, default=3)
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser(
        "feasibility",
        help="analytic compaction-fill prediction for a geometry",
    )
    p.add_argument("--size", type=int, default=50)
    p.add_argument("--target", type=int, default=None)
    p.add_argument("--fill", type=float, default=0.5)
    p.set_defaults(func=_cmd_feasibility)

    p = sub.add_parser("timeline", help="FIFO-occupancy timeline of one iteration")
    p.add_argument("--size", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--iteration", type=int, default=0)
    p.set_defaults(func=_cmd_timeline)

    p = sub.add_parser("sweep", help="QRM assembly-quality sweep over size x fill")
    p.add_argument("--sizes", type=int, nargs="+", default=[20, 30])
    p.add_argument("--fills", type=float, nargs="+", default=[0.5, 0.6])
    p.add_argument("--trials", type=int, default=3)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial-execution processes (1 = in-process)",
    )
    p.add_argument(
        "--csv", type=str, default=None, help="also write the sweep to this CSV file"
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="run an experiment campaign over a scenario grid",
        description=(
            "Expand a scenario grid (algorithm x size x fill), run every "
            "seeded trial exactly once (parallel across processes with "
            "--workers), cache per-trial results on disk, and print the "
            "aggregate table."
        ),
    )
    p.add_argument(
        "--spec",
        type=str,
        default=None,
        help="load the campaign spec from this JSON file",
    )
    p.add_argument(
        "--journal",
        type=str,
        default=None,
        help="record an append-only JSONL run journal at this "
        "path (starts fresh; see --resume)",
    )
    p.add_argument(
        "--resume",
        type=str,
        default=None,
        help="resume an interrupted campaign from its journal: "
        "the spec is reconstructed from the journal, "
        "finished trials replay, and only the remainder "
        "executes (appends to the same journal)",
    )
    p.add_argument("--name", type=str, default="cli")
    p.add_argument("--algorithms", nargs="+", default=["qrm"], metavar="ALGO")
    p.add_argument("--sizes", type=int, nargs="+", default=[20])
    p.add_argument("--fills", type=float, nargs="+", default=[0.5])
    p.add_argument(
        "--mask",
        type=str,
        nargs="+",
        default=None,
        metavar="SPEC",
        help="target-mask grid axis: kind[:key=value,...] entries "
        "('ring', 'ring:outer=6,inner=3', 'triangular:pitch=2', "
        "'sparse:sites=1-2+3-4'); the literal 'none' keeps the "
        "rectangular --target leg alongside the masked ones",
    )
    p.add_argument(
        "--loading",
        type=str,
        default="uniform",
        choices=["uniform", "poisson"],
        help="stochastic loading model for the initial arrays "
        "(poisson = Thomas-process clustered loading)",
    )
    p.add_argument("--seeds", type=int, default=5, help="trials per grid cell")
    p.add_argument(
        "--seed", type=int, default=0, help="master seed for the per-trial RNG streams"
    )
    p.add_argument(
        "--fpga",
        action="store_true",
        help="add FPGA cycle-model metrics (qrm cells only)",
    )
    p.add_argument(
        "--timing",
        action="store_true",
        help="add measured Python wall-clock metrics "
        "(non-deterministic)",
    )
    p.add_argument(
        "--loss",
        action="store_true",
        help="replay schedules through the default atom-loss "
        "model",
    )
    p.add_argument(
        "--cycles",
        type=int,
        default=1,
        metavar="N",
        help="closed-loop cycles per trial: rearrange, apply "
        "losses, re-image, repair — up to N camera frames "
        "(1 = classic open-loop trial)",
    )
    p.add_argument(
        "--workers",
        type=str,
        default=None,
        help="trial-execution processes (default: in-process for "
        "--executor process, the CPU count for --executor async); "
        "for --executor distributed, either a count of local "
        "subprocess workers or host:port[,host:port...] naming "
        "running 'repro worker --listen' daemons",
    )
    p.add_argument(
        "--executor",
        choices=["serial", "process", "async", "service", "distributed"],
        default="process",
        help="execution backend: 'process' (default; serial "
        "when --workers <= 1), 'async' (asyncio-driven "
        "pool with bounded in-flight trials), 'serial', "
        "'service' (schedule through a running repro serve "
        "instance; needs --service-addr), or 'distributed' "
        "(fan trials out across worker daemons with "
        "health-checks and re-dispatch; see --workers)",
    )
    p.add_argument(
        "--service-addr",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="address of the scheduling service for "
        "--executor service",
    )
    p.add_argument(
        "--chunksize",
        type=int,
        default=1,
        help="trials dispatched to a worker at a time",
    )
    p.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="consecutive same-cell trials scheduled per batched "
        "call (1 = per-trial execution); batch-capable "
        "algorithms amortise analysis across the group, "
        "aggregates are identical either way",
    )
    p.add_argument(
        "--interrupt-after",
        type=int,
        default=None,
        metavar="N",
        help="(testing) raise KeyboardInterrupt after N "
        "executed trials — exercises the journal "
        "interrupt/resume path deterministically",
    )
    p.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="trial cache directory (default: "
        "$REPRO_CACHE_DIR or .repro-cache/campaigns)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="do not read or write the trial cache"
    )
    p.add_argument(
        "--csv",
        type=str,
        default=None,
        help="also write the aggregate table to this CSV file",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="expand every metric into mean/std/min/max columns",
    )
    p.add_argument(
        "--dump-spec",
        action="store_true",
        help="print the expanded spec as JSON and exit",
    )
    p.add_argument("--quiet", action="store_true", help="suppress progress output")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "pipeline",
        help="closed-loop camera -> detect -> schedule -> AWG pipeline",
        description=(
            "Stream camera frames through the full closed-loop data path "
            "(render -> detect occupancy -> schedule -> compile AWG "
            "waveforms -> replay with losses), sequentially or with "
            "stages pipelined across frames, and report per-stage "
            "latency against the paper's hardware budget."
        ),
    )
    p.add_argument("--size", type=int, default=12)
    p.add_argument("--target", type=int, default=None)
    p.add_argument(
        "--mask",
        type=str,
        default=None,
        metavar="SPEC",
        help="non-rectangular target mask (same syntax as "
        "'repro rearrange --mask'; overrides --target)",
    )
    p.add_argument("--fill", type=float, default=0.6)
    p.add_argument("--algorithm", default="qrm", choices=list_algorithms())
    p.add_argument("--shots", type=int, default=4, help="independent atom arrays")
    p.add_argument(
        "--cycles",
        type=int,
        default=1,
        metavar="N",
        help="closed-loop repair cycles per shot (re-image after replay)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--loss",
        action="store_true",
        help="replay through the default atom-loss model",
    )
    p.add_argument(
        "--fpga",
        action="store_true",
        help="also run the FPGA cycle model per frame and compare "
        "the measured stages against the paper's hardware "
        "budget (qrm only)",
    )
    p.add_argument(
        "--mode",
        choices=["both", "sequential", "pipelined"],
        default="both",
        help="execution mode; 'both' runs the two drivers and "
        "fails (exit 1) unless their traces are byte-identical",
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=4,
        help="bounded queue capacity between pipelined stages",
    )
    p.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="write the canonical per-frame trace (JSONL) here — "
        "byte-identical across modes",
    )
    p.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="write the full report (metrics + stage latencies) here",
    )
    p.add_argument("--quiet", action="store_true", help="suppress the summary")
    p.set_defaults(func=_cmd_pipeline)

    p = sub.add_parser(
        "bench",
        help="schedule-construction performance benchmark",
        description=(
            "Time schedule construction for QRM and the baselines over a "
            "size x fill grid, print the summary table, and write the "
            "machine-readable results (with the QRM before/after "
            "vectorisation speedup) to a BENCH_*.json file."
        ),
    )
    p.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="array widths to benchmark (default 32 64 128)",
    )
    p.add_argument(
        "--fills",
        type=float,
        nargs="+",
        default=None,
        help="loading fills to benchmark (default 0.3 0.5 0.7)",
    )
    p.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        metavar="ALGO",
        help="schedulers to time (default qrm tetris psca mta1)",
    )
    p.add_argument(
        "--trials", type=int, default=None, help="seeded trials per case (default 3)"
    )
    p.add_argument(
        "--seed", type=int, default=0, help="master seed for the per-trial loads"
    )
    p.add_argument(
        "--out",
        type=str,
        default="BENCH_qrm.json",
        help="output JSON path (default ./BENCH_qrm.json)",
    )
    p.add_argument(
        "--speedup-size",
        type=int,
        default=None,
        help="array width for the QRM before/after block "
        "(default 64, or 32 with --smoke)",
    )
    p.add_argument(
        "--no-speedup",
        action="store_true",
        help="skip the QRM before/after speedup block",
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="small fast grid for CI (qrm+tetris+mta1 at 16/32)",
    )
    p.add_argument(
        "--gate",
        type=str,
        default=None,
        metavar="BASELINE.json",
        help="fail (exit 1) when a measured speedup ratio slips "
        "more than --gate-tolerance below this committed "
        "bench report's; only ratios both reports measured "
        "at the same size/fill are compared",
    )
    p.add_argument(
        "--gate-tolerance",
        type=float,
        default=0.15,
        metavar="FRACTION",
        help="allowed relative speedup slip for --gate "
        "(default 0.15 = 15%%)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress on stderr"
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the rearrangement scheduling service",
        description=(
            "Start the long-lived scheduling server: clients submit "
            "occupancy frames over TCP (length-prefixed pickle frames or "
            "newline-delimited JSON on the same port) and stream back "
            "schedules; concurrent requests for the same geometry are "
            "micro-batched through the cross-trial engine and served from "
            "warm per-geometry caches."
        ),
    )
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=7421,
        help="TCP port (0 picks a free port; default 7421)",
    )
    p.add_argument(
        "--batch-window",
        type=float,
        default=2.0,
        metavar="MS",
        help="milliseconds a wave stays open for concurrent "
        "requests to pile in (default 2.0; 0 disables the "
        "timer)",
    )
    p.add_argument(
        "--max-batch-size",
        type=int,
        default=32,
        help="requests per schedule_batch call (1 = batching off)",
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=8,
        help="warm per-geometry scheduler LRU capacity",
    )
    p.add_argument("--quiet", action="store_true", help="suppress startup banner")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "worker",
        help="run a campaign worker (stdio or TCP daemon)",
        description=(
            "Serve distributed campaign trials.  By default speaks the "
            "frame protocol over stdin/stdout (what the subprocess "
            "transport launches); with --listen HOST:PORT it runs as a "
            "TCP daemon serving sequential connections from "
            "'repro campaign --executor distributed'."
        ),
    )
    p.add_argument(
        "--listen",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="serve TCP connections on this address (port 0 picks a "
        "free port; the bound address is announced on stderr)",
    )
    p.add_argument(
        "--max-connections",
        type=int,
        default=None,
        metavar="N",
        help="exit after serving N connections (default: serve forever)",
    )
    p.add_argument("--quiet", action="store_true", help="suppress status lines")
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser("resources", help="FPGA resource estimate")
    p.add_argument("--size", type=int, default=50)
    p.set_defaults(func=_cmd_resources)

    p = sub.add_parser("trace", help="Fig 6-style shift-kernel trace")
    p.add_argument("--size", type=int, default=10)
    p.add_argument("--fill", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("algorithms", help="list registered algorithms")
    p.set_defaults(func=_cmd_algorithms)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
