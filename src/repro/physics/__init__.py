"""Physical loss models for the rearrangement process."""

from repro.physics.loss import (
    DEFAULT_LOSS_MODEL,
    LossModel,
    LossReport,
    expected_atom_survival,
    simulate_losses,
)

__all__ = [
    "DEFAULT_LOSS_MODEL",
    "LossModel",
    "LossReport",
    "expected_atom_survival",
    "simulate_losses",
]
