"""Atom-loss models during rearrangement (extension substrate).

Every real rearrangement loses atoms: background-gas collisions empty
traps at a rate set by the vacuum lifetime, and each tweezer hand-off
(pick up, drop off) has a finite failure probability.  The models here
quantify why schedule *length* matters physically — a schedule with
fewer, more parallel moves finishes sooner and hands each atom over
fewer times, so more atoms survive.  This is the systems argument behind
the paper's drive for parallelism, made measurable.

Defaults are typical published magnitudes: tens-of-seconds vacuum
lifetime, ~0.1-1 % loss per transfer pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.aod.executor import apply_parallel_move
from repro.aod.schedule import MoveSchedule
from repro.aod.timing import DEFAULT_MOVE_TIMING, MoveTimingModel
from repro.errors import ConfigurationError
from repro.lattice.array import AtomArray
from repro.lattice.loading import as_rng


@dataclass(frozen=True)
class LossModel:
    """Loss channels during rearrangement.

    Attributes
    ----------
    vacuum_lifetime_s:
        1/e trap lifetime against background-gas collisions; applies to
        every trapped atom for the whole rearrangement duration.
    loss_per_transfer:
        Probability of losing an atom in one static<->mobile hand-off;
        each parallel move costs every moved atom two hand-offs.
    loss_per_site:
        Probability of losing a moved atom per lattice site of transport
        (heating during the frequency ramp).
    """

    vacuum_lifetime_s: float = 30.0
    loss_per_transfer: float = 2e-3
    loss_per_site: float = 1e-4

    def __post_init__(self) -> None:
        if self.vacuum_lifetime_s <= 0:
            raise ConfigurationError("vacuum_lifetime_s must be positive")
        for name in ("loss_per_transfer", "loss_per_site"):
            if not 0.0 <= getattr(self, name) < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1)")

    def vacuum_survival(self, duration_us: float) -> float:
        """Survival probability over ``duration_us`` of wall time."""
        if duration_us < 0:
            raise ConfigurationError("duration_us must be >= 0")
        return math.exp(-duration_us * 1e-6 / self.vacuum_lifetime_s)

    def move_survival(self, steps: int) -> float:
        """Survival of one atom through one parallel move it takes part in."""
        transfer = (1.0 - self.loss_per_transfer) ** 2
        transport = (1.0 - self.loss_per_site) ** steps
        return transfer * transport


DEFAULT_LOSS_MODEL = LossModel()


@dataclass
class LossReport:
    """Outcome of a stochastic loss replay."""

    atoms_initial: int
    atoms_final: int
    lost_vacuum: int = 0
    lost_transfer: int = 0
    duration_us: float = 0.0
    final_array: AtomArray = field(default=None, repr=False)

    @property
    def atoms_lost(self) -> int:
        return self.atoms_initial - self.atoms_final

    @property
    def survival_fraction(self) -> float:
        if self.atoms_initial == 0:
            return 1.0
        return self.atoms_final / self.atoms_initial


def expected_atom_survival(
    schedule: MoveSchedule,
    mean_moves_per_atom: float,
    mean_steps_per_move: float = 1.0,
    loss: LossModel = DEFAULT_LOSS_MODEL,
    timing: MoveTimingModel = DEFAULT_MOVE_TIMING,
) -> float:
    """Analytic per-atom survival estimate for a schedule.

    Combines the vacuum decay over the schedule's motion time with the
    hand-off/transport losses of the average atom.
    """
    duration = timing.schedule_motion_us(schedule)
    vacuum = loss.vacuum_survival(duration)
    handling = loss.move_survival(
        max(1, round(mean_steps_per_move))
    ) ** mean_moves_per_atom
    return vacuum * handling


def simulate_losses(
    initial: AtomArray,
    schedule: MoveSchedule,
    loss: LossModel = DEFAULT_LOSS_MODEL,
    timing: MoveTimingModel = DEFAULT_MOVE_TIMING,
    rng: int | np.random.Generator | None = None,
) -> LossReport:
    """Replay ``schedule`` with stochastic atom loss.

    After each parallel move, every surviving atom faces the vacuum
    hazard of the move's duration and every *moved* atom additionally
    faces the hand-off/transport hazard.  Losing atoms only ever empties
    traps, so the remaining schedule stays executable (suffix shifts
    tolerate empty selected traps).
    """
    gen = as_rng(rng)
    array = initial.copy()
    report = LossReport(
        atoms_initial=array.n_atoms,
        atoms_final=array.n_atoms,
        final_array=array,
    )
    for move in schedule:
        duration = timing.move_duration_us(move) + timing.settle_us
        report.duration_us += duration

        # Which sites does this move displace?
        moved_sites: list[tuple[int, int]] = []
        for shift in move.shifts:
            for site in shift.sites():
                if array.grid[site]:
                    moved_sites.append(shift.destination(site))
        apply_parallel_move(array.grid, move)

        # Hand-off and transport loss for the moved atoms.
        p_move_loss = 1.0 - loss.move_survival(move.steps)
        if p_move_loss > 0:
            for site in moved_sites:
                if gen.random() < p_move_loss:
                    array.grid[site] = False
                    report.lost_transfer += 1

        # Vacuum decay for everyone, over this move's duration.
        p_decay = 1.0 - loss.vacuum_survival(duration)
        if p_decay > 0:
            occupied = np.argwhere(array.grid)
            decays = gen.random(len(occupied)) < p_decay
            for (row, col) in occupied[decays]:
                array.grid[row, col] = False
                report.lost_vacuum += 1

    report.atoms_final = array.n_atoms
    report.final_array = array
    return report
