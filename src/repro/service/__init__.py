"""Rearrangement-as-a-service: the long-lived scheduling server.

The package turns the batch-first scheduling core into a network
service (ROADMAP item 1): concurrent clients submit occupancy frames
and stream back schedules, while the server's micro-batching loop
groups same-geometry requests into one
:func:`repro.baselines.base.schedule_batch` call per wake-up — so N
concurrent clients pay the amortised :class:`~repro.core.batch.
BatchQrmScheduler` cost instead of N serial dispatch sequences.

* :mod:`repro.service.server` — the asyncio server
  (:class:`SchedulingService`), its micro-batch dispatcher, and the
  :class:`ServiceThread` harness for embedding a server in-process;
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`
  (background sender, bounded in-flight window, reconnect and
  timeout/retry-with-backoff) and the :class:`RemoteAlgorithm` proxy
  that makes the service a drop-in scheduler;
* :mod:`repro.service.cache` — the warm per-geometry LRU of scheduler
  instances (``QuadrantFrame`` coefficients, batch engines,
  ``MoveInterner`` tables);
* :mod:`repro.service.executor` — the campaign executor that runs a
  whole :class:`~repro.campaign.engine.ExperimentCampaign` as a client
  of the service;
* :mod:`repro.service.wire` — the asyncio side of the length-prefixed
  pickle frame protocol plus the JSON front door codec.
"""

from repro.service.cache import SchedulerCache, SchedulerKey, resolve_scheduler
from repro.service.client import RemoteAlgorithm, ServiceClient
from repro.service.executor import ServiceExecutor
from repro.service.server import SchedulingService, ServiceThread, serve_in_thread

__all__ = [
    "RemoteAlgorithm",
    "SchedulerCache",
    "SchedulerKey",
    "SchedulingService",
    "ServiceClient",
    "ServiceExecutor",
    "ServiceThread",
    "resolve_scheduler",
    "serve_in_thread",
]
