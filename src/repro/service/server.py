"""The asyncio scheduling server and its micro-batching dispatcher.

:class:`SchedulingService` accepts TCP connections and sniffs the first
byte of each: the protocol magic selects length-prefixed pickle frames
(Python clients, :mod:`repro.service.client`), an opening ``{`` selects
the newline-delimited JSON front door (everything else).  Either way a
schedule request carries a scheduler identity
(:class:`~repro.service.cache.SchedulerKey`) plus one occupancy grid,
and lands on one shared queue.

The dispatcher is where the performance story lives.  It sleeps until a
request arrives, then holds the wave open for ``batch_window`` seconds
(or until ``max_batch_size`` requests are in hand) so concurrently
submitted frames pile into the same wave; the wave is grouped by
scheduler key and each group goes through one
:func:`repro.baselines.base.schedule_batch` call — the cross-trial
batched engine for QRM, a loop for everything else.  Scheduling then
runs *inline on the event loop*: while NumPy crunches a wave, newly
arriving requests buffer in the kernel socket buffers and flood the
queue the moment the loop yields, forming the next wave naturally —
adaptive batching without timers under load.  Batching off is just
``max_batch_size=1``.

Schedulers come from the warm :class:`~repro.service.cache.
SchedulerCache`, so the hot geometries keep their ``QuadrantFrame``
coefficients, batch engines and ``MoveInterner`` tables across waves.

A native batch call that raises falls back to scheduling the group's
arrays one by one, so only the offending request gets an error frame —
sibling requests in the wave are isolated from each other's failures.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError, ReproError, format_error
from repro.lattice.array import AtomArray
from repro.service.cache import SchedulerCache, SchedulerKey
from repro.service.wire import (
    MAX_JSON_LINE,
    decode_json_request,
    encode_json_error,
    encode_json_response,
    encode_json_value,
    read_frame_async,
    read_handshake_async,
    write_frame_async,
)

_SHUTDOWN = object()


@dataclass
class _Connection:
    """Per-connection state shared by the reader and the dispatcher."""

    writer: asyncio.StreamWriter
    json_mode: bool = False
    # Reader (malformed-request errors) and dispatcher (results) both
    # write; the lock keeps their frames from interleaving.
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)

    async def send_ok(self, request_id: Any, result: Any) -> None:
        async with self.write_lock:
            if self.json_mode:
                self.writer.write(encode_json_response(request_id, result))
                await self.writer.drain()
            else:
                await write_frame_async(self.writer, ("ok", request_id, result))

    async def send_value(self, request_id: Any, value: Any) -> None:
        async with self.write_lock:
            if self.json_mode:
                self.writer.write(encode_json_value(request_id, value))
                await self.writer.drain()
            else:
                await write_frame_async(self.writer, ("ok", request_id, value))

    async def send_error(self, request_id: Any, message: str) -> None:
        async with self.write_lock:
            if self.json_mode:
                self.writer.write(encode_json_error(request_id, message))
                await self.writer.drain()
            else:
                await write_frame_async(
                    self.writer, ("error", request_id, message)
                )


@dataclass
class _PendingRequest:
    """One schedule request waiting for (or riding in) a wave."""

    connection: _Connection
    request_id: Any
    key: SchedulerKey
    array: AtomArray


class SchedulingService:
    """Batched rearrangement scheduling over TCP.

    Parameters
    ----------
    host, port:
        Bind address; port 0 picks a free port (read ``address`` after
        :meth:`start`).
    batch_window:
        Seconds the dispatcher holds a wave open after its first
        request, letting concurrent submissions pile in.  0 disables
        the timer (the wave is whatever is already queued).
    max_batch_size:
        Hard cap on requests per ``schedule_batch`` call; 1 disables
        batching entirely (every request schedules alone — the
        benchmark's "batching off" configuration).
    cache_size:
        Capacity of the warm per-geometry scheduler LRU.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_window: float = 0.002,
        max_batch_size: int = 32,
        cache_size: int = 8,
    ):
        if batch_window < 0:
            raise ConfigurationError(
                f"batch_window must be >= 0, got {batch_window}"
            )
        if max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        self.host = host
        self.port = port
        self.batch_window = batch_window
        self.max_batch_size = max_batch_size
        self.cache = SchedulerCache(cache_size)
        self._server: asyncio.base_events.Server | None = None
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._readers: set[asyncio.Task] = set()
        # Wave accounting for the latency benchmark and the tests:
        # how often batching actually coalesced concurrent requests.
        self.stats: dict[str, int] = {
            "requests": 0,
            "errors": 0,
            "waves": 0,
            "batched_requests": 0,
            "max_wave": 0,
            "native_batch_calls": 0,
            "fallback_calls": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def start(self) -> None:
        self._queue = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._readers):
            task.cancel()
        if self._readers:
            await asyncio.gather(*self._readers, return_exceptions=True)
        if self._dispatcher is not None:
            assert self._queue is not None
            await self._queue.put(_SHUTDOWN)
            await self._dispatcher
            self._dispatcher = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    def snapshot_stats(self) -> dict[str, Any]:
        return {**self.stats, "cache": self.cache.stats()}

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._readers.add(task)
        connection = _Connection(writer=writer)
        try:
            first = await reader.read(1)
            if not first:
                return
            if first == b"{":
                connection.json_mode = True
                await self._serve_json(reader, connection, first)
            else:
                await read_handshake_async(reader, first)
                await self._serve_frames(reader, connection)
        except (asyncio.CancelledError, ConnectionResetError, EOFError):
            pass
        except ConfigurationError as exc:
            # A garbage handshake or malformed stream: one clear error
            # frame (best effort — the peer may not even speak frames).
            try:
                await connection.send_error(None, str(exc))
            except (ConnectionResetError, OSError):
                pass
        finally:
            self._readers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _serve_frames(
        self, reader: asyncio.StreamReader, connection: _Connection
    ) -> None:
        assert self._queue is not None
        while True:
            frame = await read_frame_async(reader)
            if frame is None:
                return
            try:
                op, request_id, payload = frame
            except (TypeError, ValueError):
                await connection.send_error(None, f"malformed request: {frame!r}")
                self.stats["errors"] += 1
                continue
            await self._enqueue(connection, op, request_id, payload)

    async def _serve_json(
        self,
        reader: asyncio.StreamReader,
        connection: _Connection,
        first: bytes,
    ) -> None:
        line = first + await reader.readline()
        while line.strip():
            if len(line) > MAX_JSON_LINE:
                raise ConfigurationError(
                    f"JSON request exceeds {MAX_JSON_LINE} bytes"
                )
            request_id = None
            try:
                request = decode_json_request(line)
                request_id = request.get("id")
                await self._enqueue(
                    connection, request["op"], request_id, request
                )
            except (ConfigurationError, ReproError) as exc:
                request_id = getattr(exc, "request_id", request_id)
                await connection.send_error(request_id, str(exc))
                self.stats["errors"] += 1
            line = await reader.readline()

    async def _enqueue(
        self, connection: _Connection, op: str, request_id: Any, payload: Any
    ) -> None:
        assert self._queue is not None
        if op == "ping":
            await connection.send_value(request_id, "pong")
            return
        if op == "stats":
            await connection.send_value(request_id, self.snapshot_stats())
            return
        if op != "schedule":
            await connection.send_error(request_id, f"unknown op {op!r}")
            self.stats["errors"] += 1
            return
        try:
            key = SchedulerKey.from_payload(payload)
            array = AtomArray(key.to_geometry(), payload["grid"])
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            await connection.send_error(
                request_id, f"{type(exc).__name__}: {exc}"
            )
            self.stats["errors"] += 1
            return
        self.stats["requests"] += 1
        await self._queue.put(
            _PendingRequest(
                connection=connection,
                request_id=request_id,
                key=key,
                array=array,
            )
        )

    # -- the micro-batching dispatcher --------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                return
            wave = [item]
            if self.max_batch_size > 1 and self.batch_window > 0:
                deadline = loop.time() + self.batch_window
                while len(wave) < self.max_batch_size:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                    if item is _SHUTDOWN:
                        stopping = True
                        break
                    wave.append(item)
            # Anything already queued rides along for free — the common
            # case under load, where the previous wave's inline compute
            # let a full backlog accumulate.
            while len(wave) < self.max_batch_size:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _SHUTDOWN:
                    stopping = True
                    break
                wave.append(item)
            await self._run_wave(wave)

    async def _run_wave(self, wave: list[_PendingRequest]) -> None:
        self.stats["waves"] += 1
        self.stats["max_wave"] = max(self.stats["max_wave"], len(wave))
        if len(wave) > 1:
            self.stats["batched_requests"] += len(wave)
        groups: dict[SchedulerKey, list[_PendingRequest]] = {}
        for request in wave:
            groups.setdefault(request.key, []).append(request)
        for key, group in groups.items():
            try:
                scheduler = self.cache.get(key)
            except ReproError as exc:
                for request in group:
                    self.stats["errors"] += 1
                    await request.connection.send_error(
                        request.request_id, f"{type(exc).__name__}: {exc}"
                    )
                continue
            for start in range(0, len(group), self.max_batch_size):
                chunk = group[start : start + self.max_batch_size]
                await self._run_chunk(scheduler, chunk)

    async def _run_chunk(
        self, scheduler: Any, chunk: list[_PendingRequest]
    ) -> None:
        from repro.baselines.base import schedule_batch

        arrays = [request.array for request in chunk]
        try:
            results = schedule_batch(scheduler, arrays)
            self.stats["native_batch_calls"] += 1
        except Exception:
            # Sibling isolation: redo the chunk one array at a time so
            # only the request that actually fails gets the error.
            self.stats["fallback_calls"] += 1
            results = []
            for request in chunk:
                try:
                    results.append(scheduler.schedule(request.array))
                except Exception as exc:
                    results.append(exc)
        for request, result in zip(chunk, results):
            if isinstance(result, Exception):
                self.stats["errors"] += 1
                # Mirror the worker protocol: the message carries a
                # traceback tail so remote failures stay debuggable.
                await request.connection.send_error(
                    request.request_id, format_error(result)
                )
            else:
                # Pass outcomes are analysis-internal debris (excluded
                # from repr, metrics and the oracle comparisons) but
                # dominate the pickle size — never ship them.
                result.pass_outcomes = []
                await request.connection.send_ok(request.request_id, result)


class ServiceThread:
    """A :class:`SchedulingService` on a background thread's event loop.

    The harness both the tests and the synchronous CLI/benchmark paths
    use: enter the context manager, read ``address``, connect clients.
    """

    def __init__(self, **service_kwargs: Any):
        self._service_kwargs = service_kwargs
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.service: SchedulingService | None = None

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        assert self.service is not None, "service not started"
        return self.service.address

    def start(self) -> None:
        if self._thread is not None:
            return  # idempotent: serve_in_thread() already started us
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            stop = self._stop
            self._loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def _run(self) -> None:
        async def main() -> None:
            self.service = SchedulingService(**self._service_kwargs)
            self._stop = asyncio.Event()
            try:
                await self.service.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self._stop.wait()
            await self.service.stop()

        asyncio.run(main())


def serve_in_thread(**service_kwargs: Any) -> ServiceThread:
    """Start a service on a background thread (context-manager friendly)."""
    thread = ServiceThread(**service_kwargs)
    thread.start()
    return thread
