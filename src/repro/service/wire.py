"""Asyncio transport for the frame protocol, plus the JSON front door.

The service speaks the same length-prefixed pickle frames as
:mod:`repro.campaign.protocol` — this module is the
``StreamReader``/``StreamWriter`` side of that protocol, sharing the
header layout, the handshake preamble and the max-frame-size guard with
the synchronous implementation so both ends enforce identical limits.

Request/response vocabulary (pickle mode), one tuple per frame:

* client → server: ``(op, request_id, payload)`` where ``op`` is
  ``"schedule"`` (payload: the request dict of
  :func:`repro.service.cache.SchedulerKey.from_payload` plus a
  ``"grid"`` bool array), ``"stats"`` or ``"ping"`` (payload ignored);
* server → client: ``("ok", request_id, result)`` or
  ``("error", request_id, message)``.

The JSON front door is newline-delimited JSON for non-Python clients:
one request object per line in, one response object per line out, with
schedules rendered through the stable
:func:`repro.aod.serialize.schedule_to_dict` format.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import struct
from typing import Any

import numpy as np

from repro.aod.serialize import schedule_to_dict
from repro.campaign.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
)
from repro.errors import ConfigurationError

_HEADER = struct.Struct(">I")

#: Ceiling on one JSON front-door line (grids arrive as nested lists,
#: which are ~2 bytes per site — far below this for any real geometry).
MAX_JSON_LINE = 8 * 1024 * 1024


async def read_frame_async(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Any:
    """Async :func:`repro.campaign.protocol.read_frame` (None on EOF)."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise EOFError("truncated frame header") from exc
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ConfigurationError(
            f"frame declares a {length}-byte payload, above the "
            f"{max_bytes}-byte limit — corrupt or non-protocol stream"
        )
    try:
        data = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise EOFError("truncated frame payload") from exc
    return pickle.loads(data)


async def write_frame_async(writer: asyncio.StreamWriter, payload: Any) -> None:
    """Async :func:`repro.campaign.protocol.write_frame` (drains)."""
    data = pickle.dumps(payload)
    writer.write(_HEADER.pack(len(data)))
    writer.write(data)
    await writer.drain()


async def read_handshake_async(
    reader: asyncio.StreamReader, first_byte: bytes
) -> Any:
    """Finish a handshake whose magic byte was already sniffed.

    The server reads one byte per connection to pick the protocol
    (magic → pickle frames, ``{`` → JSON lines); this consumes the
    version byte and the handshake frame that follow the magic.
    """
    if first_byte != bytes([PROTOCOL_MAGIC]):
        raise ConfigurationError(
            f"bad handshake magic 0x{first_byte[0]:02X} (expected "
            f"0x{PROTOCOL_MAGIC:02X}) — not a repro frame stream"
        )
    version_byte = await reader.readexactly(1)
    version = version_byte[0]
    if version != PROTOCOL_VERSION:
        raise ConfigurationError(
            f"unsupported protocol version {version} "
            f"(this side speaks {PROTOCOL_VERSION})"
        )
    return await read_frame_async(reader)


def decode_json_request(line: bytes) -> dict[str, Any]:
    """Parse one JSON front-door request line into the request dict.

    Accepted shapes::

        {"id": 7, "op": "stats"}
        {"id": 7, "op": "ping"}
        {"id": 7, "algorithm": "qrm", "size": 16, "grid": [[0, 1, ...]]}
        {"id": 7, "algorithm": "qrm",
         "geometry": {"width": 16, "height": 16,
                      "target_width": 8, "target_height": 8},
         "grid": [[0, 1, ...]]}
        {"id": 7, "algorithm": "qrm-repair", "size": 16,
         "mask": ["....", ".##.", ".##.", "...."],
         "grid": [[0, 1, ...]]}

    A ``"mask"`` (row strings of ``'#'`` target sites, or the
    ``/``-joined token form) names a non-rectangular target; it
    overrides any ``target`` extents, which are re-derived from the
    mask's bounding box.

    Returns ``{"op", "id", ...}`` with ``"geometry"`` normalised to a
    ``(width, height, target_width, target_height)`` tuple, ``"mask"``
    to a token string (when present) and ``"grid"`` to a bool array for
    schedule requests.

    Validation errors raised after the object parses carry the
    request's ``id`` as ``exc.request_id`` so the error frame can still
    be correlated by the client.
    """
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON request: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError("a JSON request must be an object")

    def reject(message: str, cause: Exception | None = None) -> ConfigurationError:
        exc = ConfigurationError(message)
        exc.request_id = data.get("id")
        if cause is not None:
            exc.__cause__ = cause
        return exc

    op = data.get("op", "schedule")
    request = {"op": op, "id": data.get("id")}
    if op != "schedule":
        return request
    if "grid" not in data:
        raise reject("a schedule request needs a 'grid'")
    grid = np.asarray(data["grid"], dtype=bool)
    mask_token: str | None = None
    raw_mask = data.get("mask")
    if raw_mask is not None:
        from repro.lattice.mask import TargetMask

        try:
            if isinstance(raw_mask, str):
                mask = TargetMask.from_token(raw_mask)
            else:
                mask = TargetMask.from_rows(list(raw_mask))
        except Exception as exc:
            raise reject(f"bad mask: {exc}", exc) from None
        mask_token = mask.token()
    if raw_mask is not None and ("size" in data or "geometry" in data):
        # Target extents are the mask's bounding box by definition.
        if "size" in data:
            width = height = int(data["size"])
        else:
            geo = data["geometry"]
            try:
                width, height = int(geo["width"]), int(geo["height"])
            except (KeyError, TypeError) as exc:
                raise reject(
                    "a JSON geometry needs width/height", exc
                ) from None
        box = mask.bounding_box
        geometry = (width, height, box.width, box.height)
    elif "geometry" in data:
        geo = data["geometry"]
        try:
            geometry = (
                int(geo["width"]),
                int(geo["height"]),
                int(geo["target_width"]),
                int(geo["target_height"]),
            )
        except (KeyError, TypeError) as exc:
            raise reject(
                "a JSON geometry needs width/height/target_width/target_height",
                exc,
            ) from None
    elif "size" in data:
        from repro.lattice.geometry import ArrayGeometry

        square = ArrayGeometry.square(int(data["size"]), data.get("target"))
        geometry = (
            square.width,
            square.height,
            square.target_width,
            square.target_height,
        )
    else:
        raise reject("a schedule request needs either 'geometry' or 'size'")
    request.update(
        geometry=geometry,
        algorithm=data.get("algorithm", "qrm"),
        params=data.get("params") or {},
        qrm=data.get("qrm"),
        grid=grid,
    )
    if mask_token is not None:
        request["mask"] = mask_token
    return request


def encode_json_response(request_id: Any, result: Any) -> bytes:
    """Render one schedule result as a JSON response line."""
    payload = {
        "id": request_id,
        "ok": True,
        "algorithm": result.algorithm,
        "moves": result.n_moves,
        "iterations": result.iterations_used,
        "converged": result.converged,
        "target_fill": result.target_fill_fraction,
        "defect_free": result.defect_free,
        "schedule": schedule_to_dict(result.schedule),
    }
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def encode_json_error(request_id: Any, message: str) -> bytes:
    return (
        json.dumps(
            {"id": request_id, "ok": False, "error": message},
            separators=(",", ":"),
        ).encode()
        + b"\n"
    )


def encode_json_value(request_id: Any, value: Any) -> bytes:
    """A non-schedule success response (stats, ping)."""
    return (
        json.dumps(
            {"id": request_id, "ok": True, "value": value},
            separators=(",", ":"),
        ).encode()
        + b"\n"
    )
