"""Warm per-geometry scheduler cache.

Scheduler construction is not free: a :class:`~repro.core.qrm.
QrmScheduler` derives four :class:`~repro.lattice.geometry.
QuadrantFrame` affine coefficient sets, and its batch engine
additionally owns a :class:`~repro.core.passes.MoveInterner` whose
interned shift/tag tables only pay off when they survive across calls.
The service therefore keys live scheduler instances by the full
scheduling identity — geometry extents, algorithm name, parameter
overrides — in a small LRU, so steady-state requests for the hot
geometries never re-derive any of it.

:class:`SchedulerKey` is that identity as a hashable value object; it
doubles as the request vocabulary (clients ship its payload dict next
to the occupancy grid) and as the micro-batcher's grouping key — two
requests share a ``schedule_batch`` call exactly when their keys match.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Mapping, NamedTuple

from repro.errors import ConfigurationError


class SchedulerKey(NamedTuple):
    """Hashable identity of one scheduler configuration.

    ``geometry`` is ``(width, height, target_width, target_height)``;
    ``params`` and ``qrm`` are sorted item tuples (or None) so the key
    hashes while round-tripping to plain dicts for the wire.  ``mask``
    is the :meth:`repro.lattice.mask.TargetMask.token` encoding of a
    non-rectangular target (or None for the paper's centred rectangle);
    it is a trailing field with a default so keys pickled by pre-mask
    clients keep resolving.
    """

    geometry: tuple[int, int, int, int]
    algorithm: str = "qrm"
    params: tuple[tuple[str, Any], ...] = ()
    qrm: tuple[tuple[str, Any], ...] | None = None
    mask: str | None = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SchedulerKey":
        """Build the key from a wire request dict."""
        try:
            geometry = tuple(int(v) for v in payload["geometry"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                "a schedule request needs a 4-tuple 'geometry'"
            ) from exc
        if len(geometry) != 4:
            raise ConfigurationError(
                f"geometry must be (width, height, target_width, "
                f"target_height), got {len(geometry)} values"
            )
        params = payload.get("params") or {}
        qrm = payload.get("qrm")
        mask = payload.get("mask")
        return cls(
            geometry=geometry,
            algorithm=str(payload.get("algorithm", "qrm")),
            params=tuple(sorted(params.items())),
            qrm=tuple(sorted(qrm.items())) if qrm is not None else None,
            mask=str(mask) if mask is not None else None,
        )

    def to_payload(self) -> dict[str, Any]:
        """The wire request dict (inverse of :meth:`from_payload`)."""
        payload = {
            "geometry": self.geometry,
            "algorithm": self.algorithm,
            "params": dict(self.params),
            "qrm": dict(self.qrm) if self.qrm is not None else None,
        }
        if self.mask is not None:
            payload["mask"] = self.mask
        return payload

    def to_geometry(self):
        """The :class:`~repro.lattice.geometry.ArrayGeometry` this key names.

        Decodes the mask token when present; the full constructor (not
        ``with_mask``) is used so a key whose rectangle extents disagree
        with the mask's bounding box is rejected.
        """
        from repro.lattice.geometry import ArrayGeometry

        if self.mask is None:
            return ArrayGeometry(*self.geometry)
        from repro.lattice.mask import TargetMask

        try:
            mask = TargetMask.from_token(self.mask)
        except Exception as exc:
            raise ConfigurationError(f"bad mask token: {exc}") from exc
        return ArrayGeometry(*self.geometry, mask=mask)


def resolve_scheduler(key: SchedulerKey):
    """Construct the scheduler a key names (the cache's factory)."""
    from repro.baselines.base import get_algorithm

    geometry = key.to_geometry()
    if key.qrm is not None:
        from repro.campaign.spec import QrmSpec
        from repro.core.qrm import QrmScheduler

        return QrmScheduler(geometry, QrmSpec.from_dict(dict(key.qrm)).to_params())
    try:
        return get_algorithm(key.algorithm, geometry, **dict(key.params))
    except KeyError as exc:
        raise ConfigurationError(str(exc)) from exc


class SchedulerCache:
    """LRU of live scheduler instances keyed by :class:`SchedulerKey`."""

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ConfigurationError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[SchedulerKey, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: SchedulerKey) -> bool:
        return key in self._entries

    def get(self, key: SchedulerKey):
        """The scheduler for ``key``, constructing and evicting as needed."""
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = resolve_scheduler(key)
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
