"""Campaign executor that schedules through a running service.

:class:`ServiceExecutor` slots behind the standard
:class:`~repro.campaign.executors.CampaignExecutor` protocol, but
instead of moving trials to other *processes* it moves the scheduling
work to the *service*: trials execute in-process (loading, metrics,
loss simulation are cheap and deterministic) while
:func:`repro.campaign.trial._resolve_algorithm` is routed — via the
:func:`~repro.campaign.trial.use_scheduler_factory` hook — to a
:class:`~repro.service.client.RemoteAlgorithm` bound to one shared
:class:`~repro.service.client.ServiceClient`.

Because the service returns results bit-identical to local scheduling,
campaign aggregates through this executor are byte-identical to the
serial executor's CSV — the property the CI ``service-smoke`` job
pins.  Batched campaigns (``--batch-size N``) submit each group as N
concurrent requests, which the server's micro-batcher coalesces into
one :class:`~repro.core.batch.BatchQrmScheduler` wave.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence, TypeVar

from repro.campaign.trial import use_scheduler_factory
from repro.errors import ConfigurationError
from repro.service.client import RemoteAlgorithm, ServiceClient

T = TypeVar("T")


class ServiceExecutor:
    """Run campaign trials as clients of a scheduling service.

    Parameters
    ----------
    address:
        ``(host, port)`` of the service, or a ``"host:port"`` string
        (the CLI's ``--service-addr`` form).
    client_options:
        Forwarded to :class:`~repro.service.client.ServiceClient`
        (``max_in_flight``, ``request_timeout``, ``max_retries``, ...).
    """

    def __init__(self, address, **client_options: Any):
        self.address = parse_address(address)
        self.client_options = client_options

    def run(
        self, fn: Callable[[T], Any], items: Sequence[T]
    ) -> Iterator[tuple[int, Any]]:
        items = list(items)
        if not items:
            return
        with ServiceClient(self.address, **self.client_options) as client:

            def factory(cell, geometry):
                return RemoteAlgorithm.for_cell(client, cell, geometry)

            with use_scheduler_factory(factory):
                for index, item in enumerate(items):
                    yield index, fn(item)


def parse_address(address) -> tuple[str, int]:
    """Normalise ``"host:port"`` / ``(host, port)`` to a tuple."""
    if isinstance(address, str):
        host, sep, port = address.rpartition(":")
        if not sep or not host:
            raise ConfigurationError(
                f"service address must be host:port, got {address!r}"
            )
        try:
            return (host, int(port))
        except ValueError as exc:
            raise ConfigurationError(
                f"service address must be host:port, got {address!r}"
            ) from exc
    host, port = address
    return (str(host), int(port))
