"""Blocking client for the scheduling service.

:class:`ServiceClient` is what campaigns, benchmarks and interactive
callers use from ordinary synchronous code.  The shape follows the
background-queue idiom of production ingest clients: callers never
touch the socket — :meth:`submit_schedule` registers a
:class:`ServiceFuture`, enqueues the request on a background sender
thread, and returns immediately.  A bounded in-flight window (a
semaphore sized ``max_in_flight``) provides backpressure: submissions
beyond the window block until earlier requests resolve, which also
caps how large a wave the server is asked to absorb from one client.

Reliability lives in two places:

* the receiver thread owns the connection — on EOF or a socket error
  it reconnects with exponential backoff and *resends every pending
  request* (requests are idempotent: scheduling is deterministic, and
  duplicate responses for an already-resolved id are dropped);
* :meth:`ServiceFuture.result` retries: a request unanswered after
  ``request_timeout`` seconds is resent (with backoff) up to
  ``max_retries`` times before raising
  :class:`~repro.errors.ServiceTimeoutError`.

:class:`RemoteAlgorithm` wraps a client + scheduler identity behind the
standard algorithm protocol (``schedule``/``schedule_batch``), which is
what lets an entire campaign run as a service client: the executor
swaps it in for the local scheduler and nothing downstream changes.
``schedule_batch`` submits the stack as concurrent requests, so the
server's micro-batcher sees them as one wave.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
import time
from typing import Any, Iterable, Sequence

from repro.campaign.protocol import read_frame, write_frame, write_handshake
from repro.errors import ServiceError, ServiceTimeoutError
from repro.lattice.array import AtomArray
from repro.service.cache import SchedulerKey

_CLOSE = object()


class ServiceFuture:
    """The eventual response to one submitted request."""

    def __init__(self, client: "ServiceClient", op: str, request_id: int, payload):
        self._client = client
        self.op = op
        self.request_id = request_id
        self.payload = payload
        self._event = threading.Event()
        self._status: str | None = None
        self._value: Any = None

    def done(self) -> bool:
        return self._event.is_set()

    def _finish(self, status: str, value: Any) -> None:
        self._status = status
        self._value = value
        self._event.set()

    def result(self, timeout: float | None = None) -> Any:
        """Block for the response (the client's retry loop applies).

        ``timeout`` overrides the client's per-attempt ``request_timeout``
        for this wait; retries and backoff still apply.
        """
        self._client._wait(self, timeout)
        if self._status == "ok":
            return self._value
        if isinstance(self._value, Exception):
            raise self._value
        raise ServiceError(str(self._value))


class ServiceClient:
    """Background-queue client speaking pickle frames to the service.

    Parameters
    ----------
    address:
        ``(host, port)`` of a running :class:`~repro.service.server.
        SchedulingService`.
    max_in_flight:
        Bound on unresolved requests; further submissions block.  Keep
        it at or above the server's ``max_batch_size`` when the goal is
        full batching from a single client.
    request_timeout:
        Seconds to wait for a response before resending the request.
    max_retries:
        Resend attempts before a wait raises
        :class:`~repro.errors.ServiceTimeoutError`.
    backoff_base:
        First retry/reconnect delay; doubles per attempt.
    """

    def __init__(
        self,
        address: tuple[str, int],
        *,
        max_in_flight: int = 32,
        request_timeout: float = 30.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
    ):
        if max_in_flight < 1:
            raise ServiceError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.address = tuple(address)
        self.max_in_flight = max_in_flight
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self._ids = itertools.count()
        self._slots = threading.BoundedSemaphore(max_in_flight)
        self._pending: dict[int, ServiceFuture] = {}
        self._pending_lock = threading.Lock()
        self._sendq: queue.SimpleQueue = queue.SimpleQueue()
        self._conn_lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._rfile = None
        self._wfile = None
        self._closing = False
        self._connect()
        self._sender = threading.Thread(
            target=self._send_loop, name="repro-service-send", daemon=True
        )
        self._receiver = threading.Thread(
            target=self._receive_loop, name="repro-service-recv", daemon=True
        )
        self._sender.start()
        self._receiver.start()

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._closing:
            return
        self._closing = True
        self._sendq.put(_CLOSE)
        self._sender.join(timeout=5)
        with self._conn_lock:
            self._teardown()
        self._receiver.join(timeout=5)
        self._fail_pending(ServiceError("client closed with requests in flight"))

    # -- public API --------------------------------------------------------

    def submit_schedule(
        self, key: SchedulerKey, array: AtomArray
    ) -> ServiceFuture:
        """Submit one occupancy frame; returns immediately.

        Blocks only when the in-flight window is full (backpressure).
        """
        payload = key.to_payload()
        payload["grid"] = array.grid
        return self._submit("schedule", payload)

    def schedule(self, key: SchedulerKey, array: AtomArray):
        """Submit and block for the schedule (single-request callers)."""
        return self.submit_schedule(key, array).result()

    def schedule_many(
        self, key: SchedulerKey, arrays: Iterable[AtomArray]
    ) -> list:
        """Submit a stack concurrently and collect results in order.

        All requests enter the service together (window permitting), so
        the server's micro-batcher can coalesce them into one wave.
        """
        futures = [self.submit_schedule(key, array) for array in arrays]
        return [future.result() for future in futures]

    def stats(self) -> dict:
        """The server's wave/cache counters (see the server docstring)."""
        return self._submit("stats", None).result()

    def ping(self) -> bool:
        return self._submit("ping", None).result() == "pong"

    # -- internals ---------------------------------------------------------

    def _submit(self, op: str, payload: Any) -> ServiceFuture:
        if self._closing:
            raise ServiceError("client is closed")
        self._slots.acquire()
        request_id = next(self._ids)
        future = ServiceFuture(self, op, request_id, payload)
        with self._pending_lock:
            self._pending[request_id] = future
        self._sendq.put(future)
        return future

    def _wait(self, future: ServiceFuture, timeout: float | None = None) -> None:
        per_attempt = self.request_timeout if timeout is None else timeout
        attempt = 0
        while not future._event.wait(per_attempt):
            attempt += 1
            if attempt > self.max_retries:
                with self._pending_lock:
                    self._pending.pop(future.request_id, None)
                self._release(future)
                future._finish(
                    "error",
                    ServiceTimeoutError(
                        f"request {future.request_id} ({future.op}) got no "
                        f"response within {per_attempt}s after "
                        f"{self.max_retries} retries"
                    ),
                )
                return
            time.sleep(self.backoff_base * 2 ** (attempt - 1))
            if not future.done():
                self._sendq.put(future)  # resend; duplicates are dropped

    def _resolve(self, request_id: int, status: str, value: Any) -> None:
        with self._pending_lock:
            future = self._pending.pop(request_id, None)
        if future is None:
            return  # duplicate response after a retry — already resolved
        if status == "error" and not isinstance(value, Exception):
            value = ServiceError(str(value))
        future._finish(status, value)
        self._release(future)

    def _release(self, future: ServiceFuture) -> None:
        try:
            self._slots.release()
        except ValueError:
            pass  # already released for this future

    def _fail_pending(self, error: Exception) -> None:
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for future in pending.values():
            future._finish("error", error)
            self._release(future)

    # -- connection management (receiver thread owns reconnection) ---------

    def _connect(self) -> None:
        attempt = 0
        while True:
            try:
                sock = socket.create_connection(self.address, timeout=10.0)
                break
            except OSError as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise ServiceError(
                        f"cannot reach scheduling service at "
                        f"{self.address[0]}:{self.address[1]}: {exc}"
                    ) from exc
                time.sleep(self.backoff_base * 2 ** (attempt - 1))
        sock.settimeout(None)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        write_handshake(self._wfile, {"client": "repro", "proto": "schedule"})

    def _teardown(self) -> None:
        # Shut the socket down first: a receiver thread blocked inside
        # recv() holds the BufferedReader lock, and file.close() would
        # wait on that lock forever.  shutdown() makes the blocked read
        # return EOF immediately, releasing the lock.
        if self._sock is not None:
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        for closable in (self._wfile, self._rfile, self._sock):
            if closable is not None:
                try:
                    closable.close()
                except (OSError, ValueError):
                    pass
        self._sock = self._rfile = self._wfile = None

    def _reconnect_and_resend(self) -> None:
        with self._conn_lock:
            self._teardown()
            self._connect()
        with self._pending_lock:
            unanswered = list(self._pending.values())
        for future in unanswered:
            self._sendq.put(future)

    def _send_loop(self) -> None:
        while True:
            unit = self._sendq.get()
            if unit is _CLOSE:
                return
            if unit.done():
                continue  # resolved between retry-enqueue and now
            try:
                with self._conn_lock:
                    if self._wfile is None:
                        raise OSError("not connected")
                    write_frame(
                        self._wfile, (unit.op, unit.request_id, unit.payload)
                    )
            except (OSError, ValueError):
                # The connection died mid-send.  The receiver notices the
                # same failure, reconnects, and resends every pending
                # request — this one included — so dropping here is safe.
                if self._closing:
                    return
                time.sleep(self.backoff_base)

    def _receive_loop(self) -> None:
        while not self._closing:
            try:
                with self._conn_lock:
                    rfile = self._rfile
                frame = read_frame(rfile) if rfile is not None else None
            except Exception:
                frame = None
            if frame is None:
                if self._closing:
                    return
                try:
                    self._reconnect_and_resend()
                except Exception as exc:
                    self._fail_pending(
                        exc
                        if isinstance(exc, ServiceError)
                        else ServiceError(f"connection lost: {exc}")
                    )
                    return
                continue
            try:
                status, request_id, value = frame
            except (TypeError, ValueError):
                continue  # not a response frame; ignore
            if request_id is None:
                continue  # connection-level error notice, no owner
            self._resolve(request_id, status, value)


class RemoteAlgorithm:
    """The service as a drop-in rearrangement algorithm.

    Satisfies the :class:`repro.baselines.base.RearrangementAlgorithm`
    protocol (plus ``schedule_batch``), so anything that consumes a
    scheduler — trials, figure runners, ad-hoc scripts — can be pointed
    at a running service without code changes.  Results are the
    server's :class:`~repro.core.result.RearrangementResult` objects,
    bit-identical to local scheduling (minus the analysis-internal
    ``pass_outcomes``, which never leave the server).
    """

    def __init__(self, client: ServiceClient, key: SchedulerKey):
        self.client = client
        self.key = key
        self.name = key.algorithm

    @classmethod
    def for_cell(
        cls, client: ServiceClient, cell, geometry
    ) -> "RemoteAlgorithm":
        """The remote counterpart of ``campaign.trial._resolve_algorithm``."""
        key = SchedulerKey(
            geometry=(
                geometry.width,
                geometry.height,
                geometry.target_width,
                geometry.target_height,
            ),
            algorithm=cell.algorithm,
            qrm=(
                tuple(sorted(cell.qrm.to_dict().items()))
                if cell.qrm is not None
                else None
            ),
            # Mask-free cells keep the pre-mask wire shape; any explicit
            # mask travels as a token, even a rectangular one (its
            # rectangle may be off-centre or odd-sized, which the
            # extents-only encoding cannot represent).
            mask=(None if geometry.mask is None else geometry.mask.token()),
        )
        return cls(client, key)

    def schedule(self, array: AtomArray):
        return self.client.schedule(self.key, array)

    def schedule_batch(self, arrays: Sequence[AtomArray]) -> list:
        return self.client.schedule_many(self.key, arrays)
