"""Perf benchmark: schedule-construction wall time + QRM speedup record.

Runs the ``repro bench`` engine in smoke mode (CI-sized grid) and writes
``benchmarks/results/BENCH_qrm_smoke.json``.  The full grid — W in
{32, 64, 128} with the 64x64 before/after speedup block — is what
``repro bench`` produces and is committed at the repository root as
``BENCH_qrm.json``; this test keeps the harness itself exercised and
the smoke artefact fresh without minutes of CI time.

Also asserts the provenance claim behind the speedup numbers: the
pinned seed implementation, the live reference oracles, and the
vectorised schedulers emit bit-identical schedules.
"""

from __future__ import annotations

import json

import numpy as np

from repro.analysis.perf import (
    COMPONENT_NAMES,
    measure_qrm_speedup,
    run_perf_suite,
    validate_bench_report,
)
from repro.analysis.seed_baseline import seed_run_pass
from repro.core.passes import run_pass_reference
from repro.core.qrm import QrmScheduler
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform


def test_bench_perf_smoke(seed_base, results_dir, emit):
    report = run_perf_suite(
        sizes=(16, 32),
        fills=(0.5,),
        algorithms=("qrm", "tetris", "mta1"),
        trials=2,
        master_seed=seed_base,
        speedup_size=32,
    )
    emit("BENCH_perf_smoke", report.format_table())
    path = report.write_json(results_dir / "BENCH_qrm_smoke.json")
    payload = json.loads(path.read_text())
    validate_bench_report(payload)
    assert len(payload["entries"]) == 6
    assert payload["skipped"] == []  # mta1 is back on the default grid
    for entry in payload["entries"]:
        assert entry["wall_ms"]["min"] <= entry["wall_ms"]["mean"]
        assert entry["wall_ms"]["mean"] <= entry["wall_ms"]["max"]
        assert entry["moves"]["mean"] > 0
    speedup = payload["speedup"]
    assert speedup["speedup_vs_seed"] > 0
    assert speedup["speedup_vs_reference"] > 0
    components = payload["component_speedups"]
    assert set(components) == set(COMPONENT_NAMES)
    for name, block in components.items():
        if name == "batched_qrm":
            assert block["single_ms"]["mean"] > 0
            for entry in block["batches"]:
                assert entry["amortized_ms"]["mean"] > 0
                assert entry["speedup_vs_single"] > 0
            continue
        if name == "service_latency":
            for entry in block["concurrency"]:
                assert entry["unbatched"]["amortized_ms"] > 0
                assert entry["batched"]["amortized_ms"] > 0
                assert entry["speedup_batched"] > 0
            continue
        assert block["vectorized_ms"]["mean"] > 0
        assert block["speedup_vs_reference"] > 0


def test_batched_qrm_speedup_block_shape(seed_base):
    from repro.analysis.perf import measure_batched_qrm_speedup

    block = measure_batched_qrm_speedup(
        size=16, batch_sizes=(1, 4), trials=1, master_seed=seed_base
    )
    assert set(block) >= {"size", "fill", "trials", "single_ms", "batches"}
    assert [entry["batch_size"] for entry in block["batches"]] == [1, 4]
    for entry in block["batches"]:
        assert entry["amortized_ms"]["mean"] > 0


def test_service_latency_block_shape(seed_base):
    from repro.analysis.perf import measure_service_latency

    block = measure_service_latency(
        size=8, concurrencies=(1, 2), requests_per_client=2,
        master_seed=seed_base,
    )
    assert set(block) >= {"size", "fill", "batch_window_ms", "concurrency"}
    assert [entry["clients"] for entry in block["concurrency"]] == [1, 2]
    for entry in block["concurrency"]:
        for mode in ("unbatched", "batched"):
            assert entry[mode]["p50_ms"] <= entry[mode]["p99_ms"]
            assert entry[mode]["amortized_ms"] > 0
        assert entry["speedup_batched"] > 0


def test_perf_gate_on_own_report(seed_base):
    # A report always gates cleanly against itself, and the gate flags a
    # fabricated collapse of any ratio it tracks — all of them in one
    # evaluation, not just the first.
    from repro.analysis.perf_gate import check_perf_regression, evaluate_gate

    report = run_perf_suite(
        sizes=(16,),
        fills=(0.5,),
        algorithms=("qrm",),
        trials=1,
        master_seed=seed_base,
        speedup_size=16,
    ).to_dict()
    assert check_perf_regression(report, report) == []
    assert evaluate_gate(report, report).ok

    slipped = json.loads(json.dumps(report))
    slipped["speedup"]["speedup_vs_reference"] = (
        report["speedup"]["speedup_vs_reference"] * 0.5
    )
    slipped["component_speedups"]["batched_qrm"]["batches"][0][
        "speedup_vs_single"
    ] *= 0.5
    slipped["component_speedups"]["service_latency"]["concurrency"][-1][
        "speedup_batched"
    ] *= 0.5
    failures = check_perf_regression(slipped, report)
    assert any("qrm@16 speedup_vs_reference" in failure for failure in failures)
    assert any("batched_qrm@16" in failure for failure in failures)
    assert any("service_latency@16" in failure for failure in failures)

    outcome = evaluate_gate(slipped, report)
    assert not outcome.ok
    assert outcome.failures == failures
    # Every slipping ratio lands in the one combined message.
    for failure in failures:
        assert failure in outcome.message()


def test_perf_gate_notices_name_skipped_components(seed_base):
    # A smoke report that measured fewer blocks than the committed
    # artefact must say which comparisons it skipped, not stay silent.
    from repro.analysis.perf_gate import evaluate_gate

    report = run_perf_suite(
        sizes=(16,),
        fills=(0.5,),
        algorithms=("qrm",),
        trials=1,
        master_seed=seed_base,
        speedup_size=None,
    ).to_dict()
    baseline = json.loads(json.dumps(report))
    baseline["speedup"] = {"size": 16, "fill": 0.5, "speedup_vs_seed": 2.0}
    baseline["component_speedups"] = {
        "tetris": {"size": 16, "fill": 0.5, "speedup_vs_reference": 2.0}
    }
    outcome = evaluate_gate(report, baseline)
    assert outcome.ok  # nothing comparable, so nothing can slip
    assert any("qrm speedup" in notice for notice in outcome.notices)
    assert any("'tetris'" in notice for notice in outcome.notices)


def test_speedup_block_shape(seed_base):
    block = measure_qrm_speedup(size=16, trials=1, master_seed=seed_base)
    assert set(block) >= {
        "vectorized_ms",
        "reference_ms",
        "seed_ms",
        "speedup_vs_seed",
        "speedup_vs_reference",
    }


def test_guarded_drain_speedup_block_shape(seed_base):
    from repro.analysis.perf import measure_guarded_drain_speedup

    block = measure_guarded_drain_speedup(size=16, trials=1, master_seed=seed_base)
    assert set(block) >= {"vectorized_ms", "reference_ms", "speedup_vs_reference"}
    assert block["vectorized_ms"]["mean"] > 0
    assert block["reference_ms"]["mean"] > 0


def test_component_oracles_match_vectorized_paths(seed_base):
    # The "before" implementations the component blocks time must emit
    # the identical schedules, or their speedup numbers are meaningless.
    from repro.baselines.mta1 import Mta1Scheduler, Mta1SchedulerReference
    from repro.baselines.psca import PscaScheduler, PscaSchedulerReference
    from repro.baselines.tetris import TetrisScheduler, TetrisSchedulerReference
    from repro.core.repair import repair_defects, repair_defects_reference

    geometry = ArrayGeometry.square(16)
    array = load_uniform(geometry, 0.5, rng=seed_base)
    for fast, slow in (
        (TetrisScheduler, TetrisSchedulerReference),
        (PscaScheduler, PscaSchedulerReference),
        (Mta1Scheduler, Mta1SchedulerReference),
    ):
        ours = fast(geometry).schedule(array)
        theirs = slow(geometry).schedule(array)
        assert len(ours.schedule) == len(theirs.schedule)
        for mine, other in zip(ours.schedule, theirs.schedule):
            assert mine == other and mine.tag == other.tag
        assert np.array_equal(ours.final.grid, theirs.final.grid)

    compacted = QrmScheduler(geometry).schedule(array).final
    fast_array, slow_array = compacted.copy(), compacted.copy()
    fast_outcome = repair_defects(fast_array)
    slow_outcome = repair_defects_reference(slow_array)
    assert len(fast_outcome.moves) == len(slow_outcome.moves)
    for mine, other in zip(fast_outcome.moves, slow_outcome.moves):
        assert mine == other and mine.tag == other.tag
    assert np.array_equal(fast_array.grid, slow_array.grid)


def test_seed_baseline_schedules_match_live_paths(seed_base):
    # The "before" implementation the bench times must be semantically
    # the same scheduler, or the speedup numbers are meaningless.
    geometry = ArrayGeometry.square(16)
    array = load_uniform(geometry, 0.5, rng=seed_base)
    vectorized = QrmScheduler(geometry).schedule(array)
    for runner in (seed_run_pass, run_pass_reference):
        other = QrmScheduler(geometry, pass_runner=runner).schedule(array)
        assert len(other.schedule) == len(vectorized.schedule)
        for ours, theirs in zip(vectorized.schedule, other.schedule):
            assert ours == theirs
            assert ours.tag == theirs.tag
        assert np.array_equal(other.final.grid, vectorized.final.grid)
