"""E5 — assembly quality vs loading probability (extension experiment).

Quantifies the feasibility analysis in DESIGN.md: centre-ward quadrant
compaction alone cannot always fill the target from a 50 % load, and the
optional repair stage closes the gap.
"""

from __future__ import annotations

from repro.analysis.experiments import run_success_sweep


def test_success_sweep_table(benchmark, emit, seed_base):
    result = benchmark.pedantic(
        run_success_sweep,
        kwargs=dict(
            fills=(0.5, 0.6, 0.7),
            size=30,
            trials=5,
            seed_base=seed_base,
            algorithms=("qrm", "qrm-repair"),
        ),
        rounds=1,
        iterations=1,
    )
    emit("success_sweep", result.format_table())

    by_key = {(r.algorithm, r.fill): r for r in result.rows}
    # Higher loading monotonically improves plain QRM's fill.
    assert (
        by_key[("qrm", 0.5)].mean_target_fill
        <= by_key[("qrm", 0.6)].mean_target_fill
        <= by_key[("qrm", 0.7)].mean_target_fill
    )
    # The repair stage dominates plain QRM at every operating point.
    for fill in (0.5, 0.6, 0.7):
        assert (
            by_key[("qrm-repair", fill)].mean_target_fill
            >= by_key[("qrm", fill)].mean_target_fill
        )
    # With repair enabled, a 50 %-loaded array assembles reliably.
    assert by_key[("qrm-repair", 0.5)].success_probability >= 0.8
