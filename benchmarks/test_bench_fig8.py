"""E3 — Fig. 8: FPGA resource utilisation across array sizes.

Regenerates the resource curves on the ZU49DR budget: LUT and FF grow
linearly to 6.31 % / 6.19 % at 90x90, BRAM stays flat.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import PAPER_FIG8_AT_90, run_fig8
from repro.fpga.resources import ResourceModel

SIZES = (10, 30, 50, 70, 90)


def test_resource_estimation_speed(benchmark):
    model = ResourceModel()
    report = benchmark(model.estimate, 90)
    assert report.total_luts > 0


def test_fig8_table(benchmark, emit):
    result = benchmark.pedantic(
        run_fig8, kwargs=dict(sizes=SIZES), rounds=1, iterations=1
    )
    emit("fig8", result.format_table())

    rows = {row.size: row for row in result.rows}
    # Paper anchors at 90x90.
    assert rows[90].lut_pct == pytest.approx(PAPER_FIG8_AT_90["LUT"], abs=0.02)
    assert rows[90].ff_pct == pytest.approx(PAPER_FIG8_AT_90["FF"], abs=0.02)
    # Linear LUT/FF growth: second differences vanish.
    lut = [rows[s].lut_pct for s in SIZES]
    increments = [b - a for a, b in zip(lut, lut[1:])]
    assert max(increments) - min(increments) < 0.01
    # BRAM flat across the sweep.
    brams = {rows[s].bram_pct for s in SIZES}
    assert len(brams) == 1
    # FF percentage grows faster than LUT percentage in absolute cells.
    assert (rows[90].ffs - rows[10].ffs) > (rows[90].luts - rows[10].luts)


def test_fig8_module_breakdown(benchmark, emit):
    model = ResourceModel()
    report = benchmark.pedantic(model.estimate, args=(50,), rounds=1, iterations=1)
    emit("fig8_breakdown_50", report.format_table())
    qpm = next(m for m in report.modules if m.name == "quadrant_processors")
    # Sec. V-C: about half the logic sits in the four QPMs.
    assert qpm.luts / report.total_luts == pytest.approx(0.5, abs=0.02)
