"""E8 — physical atom loss vs schedule structure (extension).

Connects the analysis-side metrics to physics: schedules with more or
longer moves keep atoms in flight longer and hand them over more often,
losing more of them.  This is the quantitative version of the paper's
parallelism motivation.
"""

from __future__ import annotations

from repro.analysis.experiments import run_loss_comparison


def test_loss_comparison_table(benchmark, emit, seed_base):
    result = benchmark.pedantic(
        run_loss_comparison,
        kwargs=dict(size=20, trials=3, seed_base=seed_base),
        rounds=1,
        iterations=1,
    )
    emit("loss_comparison", result.format_table())

    by_name = {row.algorithm: row for row in result.rows}
    # Every algorithm keeps the vast majority of atoms at these rates.
    for row in result.rows:
        assert row.survival > 0.9
    # The sequential baseline's motion time per *useful* move is the
    # longest path; QRM's parallel schedule finishes the motion quickly.
    assert by_name["qrm"].motion_ms <= by_name["tetris"].motion_ms
