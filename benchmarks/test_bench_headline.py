"""E4 — headline claims of Sec. V-B.

"Our hardware implementation is able to complete the rearrangement
process of a 30x30 compact target array, derived from a 50x50 initial
loaded array, in approximately 1.0 us ... about 54x and 300x speedups in
the rearrangement analysis time" — regenerated from the cycle-level
model and the calibrated cost models.
"""

from __future__ import annotations

from repro.analysis.experiments import run_headline


def test_headline_claims(benchmark, emit, seed_base):
    result = benchmark.pedantic(
        run_headline, kwargs=dict(seed=seed_base), rounds=1, iterations=1
    )
    emit("headline", result.format_table())

    # Our cycle model is honest rather than tuned: we accept the same
    # decade, not the exact point (see EXPERIMENTS.md for the delta).
    assert 0.5 <= result.fpga_us_at_50 <= 3.0
    assert 15 <= result.speedup_vs_cpu <= 120
    assert 90 <= result.speedup_vs_tetris <= 650
    # "four iterations were used to complete the entire process"
    assert result.iterations_used <= 4
