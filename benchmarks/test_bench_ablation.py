"""E6 — ablation of the design choices DESIGN.md calls out.

Two knobs distinguish the paper's hardware-shaped algorithm from the
idealised software version:

* the *pipelined* column pass works on the row pass's transpose stream
  (stale data) and relies on the outer iterations, versus a *fresh*
  column pass that reads the updated matrix;
* mirror-quadrant *merging* in the Row Combination Unit, which shrinks
  the schedule versus emitting per-quadrant moves.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_ablation
from repro.config import QrmParameters, ScanMode
from repro.core.qrm import QrmScheduler
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform

SIZE = 50


@pytest.fixture(scope="module")
def array50():
    geometry = ArrayGeometry.square(SIZE)
    return load_uniform(geometry, 0.5, rng=99)


@pytest.mark.parametrize(
    "mode", [ScanMode.PIPELINED, ScanMode.FRESH], ids=["pipelined", "fresh"]
)
def test_scan_mode_analysis_time(benchmark, mode, array50):
    params = QrmParameters(scan_mode=mode)
    scheduler = QrmScheduler(array50.geometry, params)
    result = benchmark(scheduler.schedule, array50)
    assert result.final.n_atoms == array50.n_atoms


@pytest.mark.parametrize("merge", [True, False], ids=["merged", "unmerged"])
def test_merge_mode_analysis_time(benchmark, merge, array50):
    params = QrmParameters(merge_mirror_quadrants=merge)
    scheduler = QrmScheduler(array50.geometry, params)
    result = benchmark(scheduler.schedule, array50)
    assert result.final.n_atoms == array50.n_atoms


def test_ablation_table(benchmark, emit, seed_base):
    result = benchmark.pedantic(
        run_ablation,
        kwargs=dict(size=SIZE, trials=2, seed_base=seed_base),
        rounds=1,
        iterations=1,
    )
    emit("ablation", result.format_table())

    pipelined, fresh, unmerged, sen = result.rows
    # Fresh converges in fewer iterations and never skips stale work.
    assert fresh.iterations <= pipelined.iterations
    assert fresh.skipped_stale == 0
    assert pipelined.skipped_stale > 0
    # Both modes assemble to comparable quality.
    assert abs(fresh.target_fill - pipelined.target_fill) < 0.03
    # Merging shrinks the schedule (the Row Combination Unit's purpose).
    assert unmerged.moves > pipelined.moves
    # The s_en bound saves moves without hurting assembly quality.
    assert sen.moves <= pipelined.moves
    assert sen.target_fill >= pipelined.target_fill - 0.01
