"""E2 — Fig. 7(b): algorithm comparison on a 20x20 array.

Benchmarks all rearrangement algorithms on identical inputs and
regenerates the paper's bar chart as a table: QRM-FPGA fastest, then
QRM-CPU, Tetris, PSCA, and MTA1 slowest — with the calibrated models
reproducing the paper's ratios exactly and the measured Python times
preserving the ordering of the heavyweight baselines.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_fig7b
from repro.baselines.base import get_algorithm
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform

SIZE = 20
ALGORITHMS = ["qrm", "typical", "tetris", "psca", "mta1"]


@pytest.fixture(scope="module")
def array20b():
    geometry = ArrayGeometry.square(SIZE)
    return load_uniform(geometry, 0.5, rng=2024)


@pytest.mark.parametrize("name", ALGORITHMS)
def test_algorithm_analysis_time(benchmark, name, array20b):
    algo = get_algorithm(name, array20b.geometry)
    result = benchmark(algo.schedule, array20b)
    assert result.final.n_atoms == array20b.n_atoms


def test_fig7b_table(benchmark, emit, seed_base):
    result = benchmark.pedantic(
        run_fig7b,
        kwargs=dict(size=SIZE, trials=2, seed_base=seed_base),
        rounds=1,
        iterations=1,
    )
    emit("fig7b", result.format_table())

    by_label = {row.label: row for row in result.rows}
    # Paper ordering on the modelled (C++-equivalent) times.
    assert (
        by_label["qrm-fpga"].model_us
        < by_label["qrm-cpu"].model_us
        < by_label["tetris"].model_us
        < by_label["psca"].model_us
        < by_label["mta1"].model_us
    )
    # Paper ratios (reconstructed from the quoted factors).
    assert by_label["psca"].ratio_vs_qrm_cpu == pytest.approx(246, rel=0.01)
    assert by_label["mta1"].ratio_vs_qrm_cpu == pytest.approx(1000, rel=0.01)
    # Measured Python: the per-atom sequential baseline is still the
    # slowest of the measured implementations — though since the mta1
    # vectorisation the margin at this size is single-digit multiples,
    # not the paper's three orders of magnitude (which the calibrated
    # model above still reproduces).
    measured = {
        r.label: r.measured_python_us
        for r in result.rows
        if r.measured_python_us is not None
    }
    assert measured["mta1"] == max(measured.values())
