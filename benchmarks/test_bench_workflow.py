"""E7 — Fig. 2 motivation: end-to-end control-loop budgets.

Architecture (a) routes the image through the host CPU for detection
and scheduling; architecture (b) keeps everything on the FPGA.  The
budget gap is the paper's motivation for the accelerator.
"""

from __future__ import annotations

from repro.analysis.experiments import run_workflow_comparison


def test_workflow_comparison_table(benchmark, emit, seed_base):
    result = benchmark.pedantic(
        run_workflow_comparison,
        kwargs=dict(size=50, seed=seed_base),
        rounds=1,
        iterations=1,
    )
    emit("workflow", result.format_table())

    a_total = result.budget_a.total_us
    b_total = result.budget_b.total_us
    # The fully-on-FPGA loop wins by a clear factor.
    assert b_total < a_total / 2
    # In architecture (b) the analysis itself is a negligible slice —
    # exactly the situation the accelerator is built for.
    analysis = next(item for item in result.budget_b.items if "analysis" in item.stage)
    assert analysis.time_us < 0.1 * b_total
