"""E1 — Fig. 7(a): QRM analysis time, CPU vs FPGA, sizes 10..90.

Regenerates the paper's scaling curve: the simulated FPGA latency stays
within a few microseconds while the CPU cost grows as ~W^2.6.  The
benchmark timings measure our Python QRM analysis (the measured-CPU
column); the table also reports the calibrated C++-equivalent model and
the paper's anchor points.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_fig7a
from repro.core.qrm import QrmScheduler
from repro.fpga.accelerator import QrmAccelerator
from repro.lattice.geometry import ArrayGeometry
from repro.lattice.loading import load_uniform

SIZES = (10, 30, 50, 70, 90)


@pytest.mark.parametrize("size", SIZES)
def test_qrm_cpu_analysis(benchmark, size):
    """Measured Python analysis time per array size (CPU curve)."""
    geometry = ArrayGeometry.square(size)
    array = load_uniform(geometry, 0.5, rng=size)
    scheduler = QrmScheduler(geometry)
    result = benchmark(scheduler.schedule, array)
    assert result.schedule.n_moves >= 0


@pytest.mark.parametrize("size", SIZES)
def test_qrm_fpga_cycle_model(benchmark, size):
    """Wall time of the cycle-level FPGA simulation (not the latency it
    reports — that is in the table)."""
    geometry = ArrayGeometry.square(size)
    array = load_uniform(geometry, 0.5, rng=size)
    accelerator = QrmAccelerator(geometry)
    run = benchmark.pedantic(accelerator.run, args=(array,), rounds=2, iterations=1)
    assert run.report.total_cycles > 0


def test_fig7a_table(benchmark, emit, seed_base):
    """Regenerate the full Fig. 7(a) series and compare to the paper.

    Runs on the campaign engine with the session seed, so the emitted
    results file regenerates identically for a given ``REPRO_SEED``.
    """
    result = benchmark.pedantic(
        run_fig7a,
        kwargs=dict(sizes=SIZES, trials=2, seed_base=seed_base),
        rounds=1,
        iterations=1,
    )
    emit("fig7a", result.format_table())

    rows = {row.size: row for row in result.rows}
    # Shape checks mirroring the paper's claims:
    # (1) FPGA stays in the microsecond regime across the sweep.
    assert rows[90].fpga_us < 5.0
    # (2) FPGA grows far slower than the CPU model.
    fpga_ratio = rows[90].fpga_us / rows[10].fpga_us
    cpu_ratio = rows[90].cpu_model_us / rows[10].cpu_model_us
    assert fpga_ratio < cpu_ratio / 10
    # (3) the FPGA wins by a growing factor, double digits at 50+.
    assert rows[50].speedup_model > 10
    assert rows[90].speedup_model > rows[50].speedup_model
