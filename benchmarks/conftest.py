"""Shared helpers for the benchmark harness.

Every benchmark regenerates one evaluation artefact of the paper and
writes its table to ``benchmarks/results/<name>.txt`` in addition to
printing it (run with ``-s`` to see the tables live).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write a table to the results directory and echo it to stdout."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit
