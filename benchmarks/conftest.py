"""Shared helpers for the benchmark harness.

Every benchmark regenerates one evaluation artefact of the paper and
writes its table to ``benchmarks/results/<name>.txt`` in addition to
printing it (run with ``-s`` to see the tables live).

All seeded benchmarks derive their RNG streams from the ``seed_base``
fixture, so ``REPRO_SEED=<n> pytest benchmarks/`` regenerates every
results file under an explicit seed.  Every seeded column is exact
across runs; the measured wall-clock columns of fig7a/fig7b
(``python_us``) carry run-to-run jitter by nature.

When ``REPRO_SEED`` is *unset* the whole benchmark harness skips
gracefully instead of silently regenerating ``benchmarks/results/*``
from an implicit seed — an unseeded run would overwrite the committed
artefacts with nondeterministic wall-clock columns.  CI exports
``REPRO_SEED=0`` on every job that regenerates or uploads artefacts.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Environment variable overriding the master seed of every benchmark.
SEED_ENV = "REPRO_SEED"


@pytest.fixture(scope="session", autouse=True)
def _job_scoped_trial_cache(tmp_path_factory):
    """Route the campaign trial cache through pytest's tmp factory.

    Any benchmark (or code it calls) that opens a ``TrialCache``
    without an explicit directory would otherwise write to
    ``$REPRO_CACHE_DIR`` or ``.repro-cache/`` in the working directory
    and leave it behind — in CI that means stray cache dirs accumulate
    across jobs.  Pointing the env var at a pytest-managed tmp dir
    keeps every run job-scoped and auto-cleaned.
    """
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def seed_base() -> int:
    """Master seed for benchmark experiments (requires ``REPRO_SEED``)."""
    value = os.environ.get(SEED_ENV)
    if value is None:
        pytest.skip(
            f"benchmark artefacts regenerate only under an explicit seed; "
            f"set {SEED_ENV} (e.g. {SEED_ENV}=0) to run the benchmarks"
        )
    return int(value)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write a table to the results directory and echo it to stdout."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit
