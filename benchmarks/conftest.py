"""Shared helpers for the benchmark harness.

Every benchmark regenerates one evaluation artefact of the paper and
writes its table to ``benchmarks/results/<name>.txt`` in addition to
printing it (run with ``-s`` to see the tables live).

All seeded benchmarks derive their RNG streams from the ``seed_base``
fixture, so ``REPRO_SEED=<n> pytest benchmarks/`` regenerates every
results file under an explicit seed.  Every seeded column is exact
across runs; the measured wall-clock columns of fig7a/fig7b
(``python_us``) carry run-to-run jitter by nature.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Environment variable overriding the master seed of every benchmark.
SEED_ENV = "REPRO_SEED"


@pytest.fixture(scope="session")
def seed_base() -> int:
    """Master seed for benchmark experiments (``REPRO_SEED``, default 0)."""
    return int(os.environ.get(SEED_ENV, "0"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write a table to the results directory and echo it to stdout."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit
