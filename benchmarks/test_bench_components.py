"""Micro-benchmarks of the individual substrates.

Not a paper figure — these guard the performance of the hot paths the
other benchmarks depend on (scan kernel, executor, packing, detection).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aod.executor import apply_parallel_move
from repro.aod.move import LineShift, ParallelMove
from repro.core.scan import scan_axis, scan_line
from repro.detection.detect import detect_occupancy
from repro.detection.imaging import render_image
from repro.fpga.bitvec import BitVector
from repro.fpga.packets import pack_occupancy, unpack_occupancy
from repro.fpga.shift_kernel import ShiftKernelLane
from repro.lattice.geometry import ArrayGeometry, Direction
from repro.lattice.loading import load_uniform


@pytest.fixture(scope="module")
def line45(rng=np.random.default_rng(5)):
    return rng.random(45) < 0.5


@pytest.fixture(scope="module")
def grid50(rng=np.random.default_rng(6)):
    return rng.random((50, 50)) < 0.5


def test_scan_line_45(benchmark, line45):
    result = benchmark(scan_line, line45)
    assert result.n_atoms == int(line45.sum())


def test_scan_axis_quadrant_45(benchmark, grid50):
    local = grid50[:45, :45]
    scans = benchmark(scan_axis, local, 0)
    assert len(scans) == 45


def test_register_kernel_row_45(benchmark, line45):
    lane = ShiftKernelLane(line45.size)
    vec = BitVector.from_array(line45)

    def scan():
        lane.reset_buffers()
        return lane.scan_row(vec)

    trace = benchmark(scan)
    assert len(trace.stages) == line45.size


def test_executor_parallel_move_50_lines(benchmark, grid50):
    grid = grid50.copy()
    grid[:, 20] = False  # keep the leading column free of collisions
    shifts = [
        LineShift(Direction.EAST, line, span_start=0, span_stop=20)
        for line in range(50)
    ]
    move = ParallelMove.of(shifts)

    def run():
        work = grid.copy()
        return apply_parallel_move(work, move)

    moved = benchmark(run)
    assert moved > 0


def test_packet_round_trip_50(benchmark):
    geometry = ArrayGeometry.square(50, 30)
    array = load_uniform(geometry, 0.5, rng=3)

    def round_trip():
        return unpack_occupancy(pack_occupancy(array), geometry)

    recovered = benchmark(round_trip)
    assert recovered == array


def test_detection_20(benchmark):
    geometry = ArrayGeometry.square(20, 12)
    truth = load_uniform(geometry, 0.5, rng=4)
    image = render_image(truth, rng=5)
    result = benchmark(detect_occupancy, image, geometry)
    assert result.array.n_atoms > 0
